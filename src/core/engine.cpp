#include "core/engine.hpp"

#include <cstring>
#include <utility>

#include "core/kernel_contracts.hpp"
#include "obs/names.hpp"
#include "obs/profile.hpp"
#include "util/clock.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace plf::core {

PlfEngine::PlfEngine(phylo::PatternMatrix data, const phylo::GtrParams& params,
                     phylo::Tree tree, ExecutionBackend& backend,
                     KernelVariant variant, SiteRepeatsMode site_repeats,
                     DispatchMode dispatch, ClvBudget clv_budget)
    : data_(std::move(data)),
      model_(params),
      tree_(std::move(tree)),
      backend_(&backend),
      kernels_(&kernels(variant)),
      repeats_mode_(site_repeats),
      dispatch_(dispatch) {
  PLF_CHECK(data_.n_taxa() == tree_.n_taxa(),
            "pattern matrix and tree disagree on taxon count");
  m_ = data_.n_patterns();
  k_ = model_.n_rate_categories();

  nodes_.resize(tree_.n_nodes());
  branches_.resize(tree_.n_nodes());
  std::size_t n_internal = 0;
  for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
    const phylo::TreeNode& n = tree_.node(static_cast<int>(id));
    if (!n.is_leaf()) {
      // Scaler rows stay engine-owned (the full resum must read every
      // internal node's active row); the CLV storage itself lives in the
      // budgeted arena below.
      for (int b = 0; b < 2; ++b) {
        nodes_[id].scaler[static_cast<std::size_t>(b)].assign(m_, 0.0f);
      }
      nodes_[id].dirty = true;
      ++n_internal;
    }
    if (n.parent != phylo::kNoNode) {
      branches_[id].dirty = true;
    }
  }

  // Budgeted CLV arena (docs/MEMORY.md): two buffers of m*K*4 floats per
  // internal node; the budget is clamped up to one buffer per internal node,
  // the worst-case pinned working set of a single evaluation.
  const std::size_t slot_floats = m_ * k_ * 4;
  const std::size_t slot_bytes = slot_floats * sizeof(float);
  arena_.init(2 * tree_.n_nodes(), slot_floats,
              clv_budget.resolve(2 * n_internal * slot_bytes,
                                 n_internal * slot_bytes));
  if (clv_budget.unlimited()) {
    // Historical behaviour: preallocate both buffers of every internal node
    // eagerly, so nothing is ever evicted and node_cl() is valid (zeroed)
    // before the first evaluation.
    for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
      if (tree_.node(static_cast<int>(id)).is_leaf()) continue;
      for (int b = 0; b < 2; ++b) {
        arena_.acquire(clv_slot(static_cast<int>(id), b));
      }
    }
  }
  scaler_total_.assign(m_, 0.0);

  // +I support: which states every taxon could share, per pattern.
  const_mask_.assign(m_, phylo::kGapMask);
  for (std::size_t t = 0; t < data_.n_taxa(); ++t) {
    const phylo::StateMask* row = data_.row(t);
    for (std::size_t c = 0; c < m_; ++c) {
      const_mask_[c] = static_cast<phylo::StateMask>(const_mask_[c] & row[c]);
    }
  }
  const_lik_.assign(m_, 0.0f);

  // Site-repeat caching: identification is deferred to the first evaluation
  // (construction just marks every node stale).
  repeats_enabled_ =
      repeats_mode_ != SiteRepeatsMode::kOff &&
      has_capability(backend_->capabilities(), Capabilities::kSiteRepeats) &&
      m_ > 0;
  if (repeats_enabled_) {
    repeats_ = SiteRepeats(data_, tree_);
  }

  // Tip-specialized kernels ride plan dispatch only: the per-call path stays
  // fully generic so --dispatch=percall remains the exact A/B baseline.
  tip_kernels_enabled_ =
      dispatch_ == DispatchMode::kPlan &&
      has_capability(backend_->capabilities(), Capabilities::kTipKernels);

  // Publish the CLV footprint gauges immediately: a --metrics-json snapshot
  // taken before the first evaluation must already see engine.clv_bytes.
  publish_arena_gauges(obs::MetricsRegistry::global());
}

void PlfEngine::mark_node_dirty(int node) {
  NodeState& st = nodes_[static_cast<std::size_t>(node)];
  if (!st.dirty) {
    st.dirty = true;
    if (in_proposal_) {
      node_dirty_marks_.push_back(node);
      st.dirty_epoch = proposal_epoch_;
    }
  }
}

void PlfEngine::mark_path_dirty(int from_node) {
  for (int id = from_node; id != phylo::kNoNode; id = tree_.node(id).parent) {
    if (!tree_.node(id).is_leaf()) mark_node_dirty(id);
  }
  lik_valid_ = false;
}

void PlfEngine::mark_branch_dirty(int node) {
  BranchState& st = branches_[static_cast<std::size_t>(node)];
  if (!st.dirty) {
    st.dirty = true;
    if (in_proposal_) {
      branch_dirty_marks_.push_back(node);
      st.dirty_epoch = proposal_epoch_;
    }
  }
}

void PlfEngine::begin_proposal() {
  PLF_CHECK(!in_proposal_, "begin_proposal: proposal already open");
  in_proposal_ = true;
  ++proposal_epoch_;
  saved_ln_lik_ = ln_lik_;
  saved_lik_valid_ = lik_valid_;
  flipped_nodes_.clear();
  flipped_branches_.clear();
  node_dirty_marks_.clear();
  branch_dirty_marks_.clear();
  pre_dirty_nodes_.clear();
  pre_dirty_branches_.clear();
  old_lengths_.clear();
  nni_log_.clear();
  spr_log_.clear();
  old_params_.reset();
}

void PlfEngine::accept() {
  PLF_CHECK(in_proposal_, "accept: no open proposal");
  in_proposal_ = false;
}

void PlfEngine::reject() {
  PLF_CHECK(in_proposal_, "reject: no open proposal");
  in_proposal_ = false;

  // Undo topology changes (NNI is an involution for a fixed (v, slot)).
  for (auto it = nni_log_.rbegin(); it != nni_log_.rend(); ++it) {
    tree_.nni(it->first, it->second);
  }
  // Undo branch lengths.
  for (auto it = old_lengths_.rbegin(); it != old_lengths_.rend(); ++it) {
    tree_.set_branch_length(it->first, it->second);
  }
  // Undo SPR moves (restores the u/w/target branch lengths absolutely).
  for (auto it = spr_log_.rbegin(); it != spr_log_.rend(); ++it) {
    tree_.undo_spr(*it);
  }
  // Topology is back to the pre-proposal shape, but the repeat classes were
  // re-marked against the proposal's topology: re-identify against the
  // restored one. (CLV buffers flip back pointer-wise below; classes have no
  // double buffer — they are recomputed, which is cheap relative to kernels.)
  if (repeats_enabled_) {
    for (auto it = nni_log_.rbegin(); it != nni_log_.rend(); ++it) {
      repeats_.invalidate_path(tree_, it->first);
    }
    if (!spr_log_.empty()) repeats_.invalidate_all();
  }
  // Undo model change.
  if (old_params_) {
    model_ = phylo::SubstitutionModel(*old_params_);
  }
  // Flip buffers back (no recomputation — the MrBayes restore path).
  for (int id : flipped_nodes_) {
    nodes_[static_cast<std::size_t>(id)].active ^= 1;
  }
  for (int id : flipped_branches_) {
    branches_[static_cast<std::size_t>(id)].active ^= 1;
  }
  // Dirty flags raised by the proposal refer to state we just restored.
  for (int id : node_dirty_marks_) {
    nodes_[static_cast<std::size_t>(id)].dirty = false;
  }
  for (int id : branch_dirty_marks_) {
    branches_[static_cast<std::size_t>(id)].dirty = false;
  }
  // Anything that entered the proposal dirty was recomputed into the buffer
  // we just flipped away from; the restored buffer is stale (possibly never
  // built), so those entries go back to dirty and must be recomputed.
  for (int id : pre_dirty_nodes_) {
    nodes_[static_cast<std::size_t>(id)].dirty = true;
  }
  for (int id : pre_dirty_branches_) {
    branches_[static_cast<std::size_t>(id)].dirty = true;
  }
  if (!pre_dirty_nodes_.empty() || !pre_dirty_branches_.empty()) {
    lik_valid_ = false;
    saved_lik_valid_ = false;
  }
  // The flips above wholesale-reverted scaler rows the incremental total
  // already absorbed; only a full resum can reconcile it.
  scaler_resum_ = true;
  ln_lik_ = saved_ln_lik_;
  lik_valid_ = saved_lik_valid_;
}

void PlfEngine::set_branch_length(int node, double length) {
  if (in_proposal_) {
    old_lengths_.emplace_back(node, tree_.branch_length(node));
  }
  tree_.set_branch_length(node, length);
  mark_branch_dirty(node);
  mark_path_dirty(tree_.node(node).parent);
}

void PlfEngine::apply_nni(int v, bool swap_left) {
  tree_.nni(v, swap_left);
  if (in_proposal_) nni_log_.emplace_back(v, swap_left);
  // v's children changed, so v and everything above it must be recomputed.
  mark_path_dirty(v);
  // Descendant sets changed for the same nodes: their repeat classes are out.
  if (repeats_enabled_) repeats_.invalidate_path(tree_, v);
  scaler_resum_ = true;  // topology change: rebuild the scaler total
}

void PlfEngine::apply_spr(int s, int target, double split_x) {
  const auto undo = tree_.spr(s, target, split_x);
  if (in_proposal_) spr_log_.push_back(undo);
  // Three branch lengths changed; both the detachment and insertion sites
  // need their root paths recomputed.
  mark_branch_dirty(undo.u);
  mark_branch_dirty(undo.w);
  mark_branch_dirty(undo.target);
  mark_path_dirty(tree_.node(undo.w).parent);  // where the subtree left
  mark_path_dirty(undo.u);                     // where it arrived
  // SPR rewires ancestry broadly; re-identify all repeat classes.
  if (repeats_enabled_) repeats_.invalidate_all();
  scaler_resum_ = true;  // topology change: rebuild the scaler total
}

void PlfEngine::set_model(const phylo::GtrParams& params) {
  PLF_CHECK(params.n_rate_categories == model_.n_rate_categories(),
            "set_model: rate category count is fixed at engine construction");
  if (in_proposal_ && !old_params_) old_params_ = model_.params();
  model_ = phylo::SubstitutionModel(params);
  k_ = model_.n_rate_categories();
  for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
    if (tree_.node(static_cast<int>(id)).parent != phylo::kNoNode) {
      mark_branch_dirty(static_cast<int>(id));
    }
  }
  mark_path_dirty(tree_.root());
  // All internal nodes depend on the model, not just the root path.
  for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
    if (!tree_.node(static_cast<int>(id)).is_leaf()) {
      mark_node_dirty(static_cast<int>(id));
    }
  }
  lik_valid_ = false;
}

void PlfEngine::rebuild_branch(int node) {
  BranchState& st = branches_[static_cast<std::size_t>(node)];
  if (in_proposal_ && st.dirty && st.dirty_epoch != proposal_epoch_) {
    // Dirty since BEFORE this proposal: there is no valid pre-proposal
    // buffer to restore, so a reject must leave this branch dirty again.
    pre_dirty_branches_.push_back(node);
    st.dirty_epoch = proposal_epoch_;
  }
  // Within one proposal only the FIRST rebuild may flip: the inactive buffer
  // holds the pre-proposal matrices that reject() must be able to restore.
  int target = st.active ^ 1;
  if (in_proposal_ && st.flip_epoch == proposal_epoch_) {
    target = st.active;  // overwrite this proposal's own buffer
  }
  st.tm[static_cast<std::size_t>(target)] =
      model_.transition_matrices(tree_.branch_length(node));
  if (tree_.node(node).is_leaf()) {
    st.tp[static_cast<std::size_t>(target)] =
        TipPartial(st.tm[static_cast<std::size_t>(target)]);
    st.tp_stamp[static_cast<std::size_t>(target)] = ++tp_builds_;
  }
  if (target != st.active) {
    st.active = target;
    if (in_proposal_) {
      flipped_branches_.push_back(node);
      st.flip_epoch = proposal_epoch_;
    }
  }
  st.dirty = false;
  ++stats_.tm_builds;
}

ChildArgs PlfEngine::make_child(int node) const {
  const BranchState& b = branches_[static_cast<std::size_t>(node)];
  const auto& tm = b.tm[static_cast<std::size_t>(b.active)];
  ChildArgs ch;
  if (tree_.node(node).is_leaf()) {
    ch.mask = data_.row(static_cast<std::size_t>(tree_.node(node).taxon));
    ch.tp = b.tp[static_cast<std::size_t>(b.active)].data();
  } else {
    const NodeState& st = nodes_[static_cast<std::size_t>(node)];
    // stage_arena() pinned this buffer for the whole evaluation, so the
    // residency check cannot fire on a kernel-bound pointer.
    ch.cl = arena_.data(clv_slot(node, st.active));
  }
  ch.p = tm.row_major();
  ch.pt = tm.col_major();
  return ch;
}

ChildArgs PlfEngine::make_plan_child(int node) const {
  if (!tree_.node(node).is_leaf()) {
    const int target = plan_target_[static_cast<std::size_t>(node)];
    if (target >= 0) {
      // The child is recomputed by this same plan (an earlier level): read
      // the buffer its op writes, which becomes active at post-processing.
      // Resolved directly — the child's PRE-evaluation active buffer may be
      // evicted (only the target is staged), so make_child must not touch it.
      const BranchState& b = branches_[static_cast<std::size_t>(node)];
      const auto& tm = b.tm[static_cast<std::size_t>(b.active)];
      ChildArgs ch;
      ch.cl = arena_.data(clv_slot(node, target));
      ch.p = tm.row_major();
      ch.pt = tm.col_major();
      return ch;
    }
  }
  return make_child(node);
}

const NodeRepeats* PlfEngine::repeats_for(int id) const {
  if (!repeats_enabled_) return nullptr;
  const NodeRepeats& nr = repeats_.node(id);
  if (nr.n_classes >= m_) return nullptr;  // nothing repeats: dense is free
  if (repeats_mode_ == SiteRepeatsMode::kAuto &&
      static_cast<double>(nr.n_classes) >
          kSiteRepeatsAutoMaxUniqueFraction * static_cast<double>(m_)) {
    return nullptr;  // too few repeats to pay for the scatter pass
  }
  return &nr;
}

void PlfEngine::scatter_repeats(const NodeRepeats& nr, float* cl,
                                float* ln_scaler) const {
  core::scatter_repeats(nr, k_, cl, ln_scaler);  // core/plan.cpp
}

void PlfEngine::collect_recompute_targets() {
  recompute_targets_.clear();
  recompute_.assign(tree_.n_nodes(), 0);

  // Seed with the dirty flags; the propagation in mark_path_dirty guarantees
  // flags are set on the whole root path, so the flag alone is sufficient.
  std::vector<int> work;
  for (int id : tree_.postorder_internals()) {
    if (nodes_[static_cast<std::size_t>(id)].dirty) {
      recompute_[static_cast<std::size_t>(id)] = 1;
      work.push_back(id);
    }
  }

  // Grow the set with evicted ancestors: every internal child an in-set node
  // reads must be resident, and a non-resident one joins the set as a
  // rematerialization — recursively, since its own children may be evicted
  // too. The existing leveling/dispatch machinery then rebuilds them in the
  // same fused plan, children before parents.
  while (!work.empty()) {
    const int id = work.back();
    work.pop_back();
    const phylo::TreeNode& n = tree_.node(id);
    for (int child : {n.left, n.right}) {
      if (child == phylo::kNoNode || tree_.node(child).is_leaf()) continue;
      if (recompute_[static_cast<std::size_t>(child)] != 0) continue;
      const NodeState& cst = nodes_[static_cast<std::size_t>(child)];
      if (!arena_.resident(clv_slot(child, cst.active))) {
        recompute_[static_cast<std::size_t>(child)] = 1;
        work.push_back(child);
      }
    }
  }

  // Emit the recompute postorder. The dirty subset keeps exactly the order
  // the unbudgeted engine would produce, and rematerializations resolve to
  // the ACTIVE buffer: a clean node has only clean descendants (dirtiness is
  // upward-closed), so deterministic kernels reproduce the evicted bits
  // exactly and neither a flip nor an undo-log entry is warranted.
  std::uint64_t remat_ops = 0;
  for (int id : tree_.postorder_internals()) {
    if (recompute_[static_cast<std::size_t>(id)] == 0) continue;
    const NodeState& st = nodes_[static_cast<std::size_t>(id)];
    const bool remat = !st.dirty;
    int target;
    if (remat) {
      target = st.active;
      ++remat_ops;
    } else {
      // First recomputation in a proposal flips; later ones overwrite the
      // proposal's own buffer (see NodeState::flip_epoch).
      target = st.active ^ 1;
      if (in_proposal_ && st.flip_epoch == proposal_epoch_) {
        target = st.active;
      }
    }
    recompute_targets_.push_back({id, target, remat});
  }
  if (remat_ops > 0) arena_.note_recompute(remat_ops);
}

void PlfEngine::stage_arena() {
  // Reads first: pin the active CLV of every out-of-set internal child, so a
  // later target allocation can never evict a buffer the closure above found
  // resident. Then the write targets, children before parents. This
  // traversal — external reads in recompute postorder (left child before
  // right), then targets in recompute postorder — is the documented LRU
  // touch protocol; the reference model in tests/clv_arena_test.cpp mirrors
  // it verbatim. Pins hold through the root reduction and are dropped at the
  // end of evaluate().
  for (const RecomputeEntry& e : recompute_targets_) {
    const phylo::TreeNode& n = tree_.node(e.node);
    for (int child : {n.left, n.right}) {
      if (child == phylo::kNoNode || tree_.node(child).is_leaf()) continue;
      if (recompute_[static_cast<std::size_t>(child)] != 0) continue;
      const NodeState& cst = nodes_[static_cast<std::size_t>(child)];
      const int slot = clv_slot(child, cst.active);
      arena_.acquire(slot);
      arena_.pin(slot);
    }
  }
  for (const RecomputeEntry& e : recompute_targets_) {
    const int slot = clv_slot(e.node, e.target);
    arena_.acquire(slot);
    arena_.pin(slot);
  }
  detail::check_arena(arena_);
}

void PlfEngine::build_plan() {
  // recompute_ already marks the set (collect_recompute_targets owns it, so
  // the eviction closure and the leveling agree); resolve the targets here.
  plan_target_.assign(tree_.n_nodes(), -1);
  for (const RecomputeEntry& e : recompute_targets_) {
    plan_target_[static_cast<std::size_t>(e.node)] = e.target;
  }
  const std::vector<int> levels = compute_levels(tree_, recompute_);

  plan_.reset(tree_.n_nodes(), m_);
  for (const RecomputeEntry& e : recompute_targets_) {
    const int id = e.node;
    const int target = e.target;
    const phylo::TreeNode& n = tree_.node(id);
    NodeState& st = nodes_[static_cast<std::size_t>(id)];
    float* out = arena_.data(clv_slot(id, target));
    float* ln_scaler = st.scaler[static_cast<std::size_t>(target)].data();
    const NodeRepeats* nr = repeats_for(id);

    PlfOp op;
    op.node = id;
    op.left = n.left;
    op.right = n.right;
    op.is_root = id == tree_.root();
    op.repeats = nr;
    op.run_m = nr != nullptr ? nr->n_classes : m_;
    op.args.down.left = make_plan_child(n.left);
    op.args.down.right = make_plan_child(n.right);
    op.args.down.out = out;
    op.args.down.K = k_;
    op.args.down.site_index = nr != nullptr ? nr->unique_sites.data() : nullptr;
    op.args.down.n_sites = m_;
    if (op.is_root) {
      const int og = tree_.outgroup();
      const BranchState& ob = branches_[static_cast<std::size_t>(og)];
      op.args.out_mask =
          data_.row(static_cast<std::size_t>(tree_.node(og).taxon));
      op.args.out_tp = ob.tp[static_cast<std::size_t>(ob.active)].data();
    }
    op.scale.cl = out;
    op.scale.ln_scaler = ln_scaler;
    op.scale.K = k_;
    op.scale.site_index = op.args.down.site_index;
    op.scale.n_sites = m_;

    // Tip specialization (docs/KERNELS.md): a cherry op becomes a pair-table
    // gather, a one-tip op the branch-free tip×inner kernel. The tip child is
    // canonicalized to the left slot — the two child factors multiply
    // elementwise and IEEE multiplication commutes, so the swap is exact.
    // Root ops keep the generic three-way kernel (one per evaluation).
    if (tip_kernels_enabled_ && !op.is_root) {
      const bool l_tip = tree_.node(n.left).is_leaf();
      const bool r_tip = tree_.node(n.right).is_leaf();
      if (l_tip && r_tip) {
        const BranchState& lb = branches_[static_cast<std::size_t>(n.left)];
        const BranchState& rb = branches_[static_cast<std::size_t>(n.right)];
        const std::uint64_t sl =
            lb.tp_stamp[static_cast<std::size_t>(lb.active)];
        const std::uint64_t sr =
            rb.tp_stamp[static_cast<std::size_t>(rb.active)];
        if (st.pair_stamp_l != sl || st.pair_stamp_r != sr) {
          st.pair = TipPairTable(lb.tp[static_cast<std::size_t>(lb.active)],
                                 rb.tp[static_cast<std::size_t>(rb.active)]);
          st.pair_stamp_l = sl;
          st.pair_stamp_r = sr;
          ++stats_.tip_tables_built;
        }
        op.kind = PlfOpKind::kTipTip;
        op.tt.left_mask = op.args.down.left.mask;
        op.tt.right_mask = op.args.down.right.mask;
        op.tt.pair = st.pair.raw();
        op.tt.pair_scaled = st.pair.scaled();
        op.tt.pair_ln = st.pair.ln_factors();
        op.tt.out = out;
        op.tt.K = k_;
        op.tt.table_categories = st.pair.n_categories();
        op.tt.site_index = op.args.down.site_index;
        op.tt.n_sites = m_;
        ++stats_.tip_tt_ops;
      } else if (l_tip != r_tip) {
        if (!l_tip) {
          std::swap(op.args.down.left, op.args.down.right);
          std::swap(op.left, op.right);
        }
        op.kind = PlfOpKind::kTipInner;
        ++stats_.tip_ti_ops;
      }
    }
    plan_.add(op, static_cast<std::size_t>(
                      levels[static_cast<std::size_t>(id)]));

    // Work accounting identical to what the per-call loop counts.
    if (op.is_root) {
      ++stats_.root_calls;
      if (nr != nullptr) ++stats_.repeat_root_hits;
    } else {
      ++stats_.down_calls;
      if (nr != nullptr) ++stats_.repeat_down_hits;
    }
    ++stats_.scale_calls;
    if (nr != nullptr) {
      ++stats_.repeat_scale_hits;
      stats_.repeat_sites_total += m_;
      stats_.repeat_sites_computed += op.run_m;
    }
    stats_.pattern_iterations += 2 * op.run_m;
  }
  plan_.finalize();
  PLF_DCHECK(plan_.n_ops() == recompute_targets_.size(),
             "plan must cover the dirty set exactly");
  // No kernel may ever receive an evicted/unmapped CLV pointer: verify the
  // arena x plan handoff before any backend touches an op.
  detail::check_arena(arena_, plan_);
  ++stats_.plan_builds;
  stats_.plan_ops += plan_.n_ops();
  stats_.plan_levels += plan_.n_levels();
}

void PlfEngine::post_process_plan() {
  for (const RecomputeEntry& e : recompute_targets_) {
    NodeState& st = nodes_[static_cast<std::size_t>(e.node)];
    if (in_proposal_ && st.dirty && st.dirty_epoch != proposal_epoch_) {
      pre_dirty_nodes_.push_back(e.node);
      st.dirty_epoch = proposal_epoch_;
    }
    if (e.target != st.active) {
      st.active = e.target;
      if (in_proposal_) {
        flipped_nodes_.push_back(e.node);
        st.flip_epoch = proposal_epoch_;
      }
    }
    st.dirty = false;
  }
}

void PlfEngine::execute_percall() {
  for (const RecomputeEntry& e : recompute_targets_) {
    const int id = e.node;
    const int target = e.target;
    NodeState& st = nodes_[static_cast<std::size_t>(id)];
    if (in_proposal_ && st.dirty && st.dirty_epoch != proposal_epoch_) {
      pre_dirty_nodes_.push_back(id);
      st.dirty_epoch = proposal_epoch_;
    }
    const phylo::TreeNode& n = tree_.node(id);
    float* out = arena_.data(clv_slot(id, target));
    float* ln_scaler = st.scaler[static_cast<std::size_t>(target)].data();

    // Site-repeat compaction: compute only the class representatives, then
    // scatter their CLV blocks (and scaler entries) to the duplicate sites.
    const NodeRepeats* nr = repeats_for(id);
    const std::uint32_t* site_index =
        nr != nullptr ? nr->unique_sites.data() : nullptr;
    const std::size_t run_m = nr != nullptr ? nr->n_classes : m_;

    Stopwatch plf_sw;
    if (id == tree_.root()) {
      RootArgs ra;
      ra.down.left = make_child(n.left);
      ra.down.right = make_child(n.right);
      ra.down.out = out;
      ra.down.K = k_;
      ra.down.site_index = site_index;
      ra.down.n_sites = m_;
      const int og = tree_.outgroup();
      const BranchState& ob = branches_[static_cast<std::size_t>(og)];
      ra.out_mask = data_.row(static_cast<std::size_t>(tree_.node(og).taxon));
      ra.out_tp = ob.tp[static_cast<std::size_t>(ob.active)].data();
      {
        PLF_PROF_SCOPE(obs::kTimerCondLikeRoot);
        backend_->run_root(*kernels_, ra, run_m);
      }
      ++stats_.root_calls;
      if (nr != nullptr) ++stats_.repeat_root_hits;
    } else {
      DownArgs da;
      da.left = make_child(n.left);
      da.right = make_child(n.right);
      da.out = out;
      da.K = k_;
      da.site_index = site_index;
      da.n_sites = m_;
      {
        PLF_PROF_SCOPE(obs::kTimerCondLikeDown);
        backend_->run_down(*kernels_, da, run_m);
      }
      ++stats_.down_calls;
      if (nr != nullptr) ++stats_.repeat_down_hits;
    }

    ScaleArgs sa;
    sa.cl = out;
    sa.ln_scaler = ln_scaler;
    sa.K = k_;
    sa.site_index = site_index;
    sa.n_sites = m_;
    {
      PLF_PROF_SCOPE(obs::kTimerCondLikeScaler);
      backend_->run_scale(*kernels_, sa, run_m);
    }
    ++stats_.scale_calls;
    if (nr != nullptr) {
      ++stats_.repeat_scale_hits;
      stats_.repeat_sites_total += m_;
      stats_.repeat_sites_computed += run_m;
      PLF_PROF_SCOPE(obs::kTimerRepeatScatter);
      scatter_repeats(*nr, out, ln_scaler);
    }
    stats_.pattern_iterations += 2 * run_m;  // one PLF pass + one scaler pass
    stats_.plf_seconds += plf_sw.seconds();

    if (target != st.active) {
      st.active = target;
      if (in_proposal_) {
        flipped_nodes_.push_back(id);
        st.flip_epoch = proposal_epoch_;
      }
    }
    st.dirty = false;
  }
}

void PlfEngine::evaluate() {
  Stopwatch serial_sw;

  // 1. Rebuild dirty branch matrices (serial work, like MrBayes' TiProbs).
  {
    PLF_PROF_SCOPE(obs::kTimerTiProbs);
    for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
      const phylo::TreeNode& n = tree_.node(static_cast<int>(id));
      if (n.parent != phylo::kNoNode && branches_[id].dirty) {
        rebuild_branch(static_cast<int>(id));
      }
    }
  }
  stats_.serial_seconds += serial_sw.seconds();

  // 1b. Re-identify repeat classes on nodes whose subtree changed (lazy: the
  // topology moves only marked them stale). Postorder inside refresh()
  // guarantees children are identified before parents.
  if (repeats_enabled_ && repeats_.any_stale()) {
    PLF_PROF_SCOPE(obs::kTimerRepeatIdentify);
    Stopwatch repeat_sw;
    repeats_.refresh(tree_);
    stats_.repeat_rebuild_seconds += repeat_sw.seconds();
  }

  // 2. Recompute dirty internal nodes, children before parents: collect the
  // dirty postorder (with each node's resolved write target) once, then
  // dispatch it per-call or as one dependency-leveled plan.
  collect_recompute_targets();

  // 2a'. Pin every CLV buffer this evaluation reads or writes (acquiring
  // target storage, evicting LRU unpinned slots under a finite budget)
  // before any kernel or scaler pass runs.
  stage_arena();

  // 2a. Retire the recomputed nodes' old scaler-total contributions while
  // their pre-evaluation buffers are still active. Shared by both dispatch
  // modes and walked in the same order as the post-kernel addition pass, so
  // scaler_total_ stays bit-identical between --dispatch=percall and plan.
  // Rematerializations are skipped: their recomputed scaler row is bit-
  // identical to the one already absorbed, and (t - x) + x != t in floating
  // point — touching the total would break budgeted/unbudgeted bit-identity.
  if (!scaler_resum_) {
    serial_sw.reset();
    PLF_PROF_SCOPE(obs::kTimerScalerSum);
    for (const RecomputeEntry& e : recompute_targets_) {
      if (e.remat) continue;
      const NodeState& st = nodes_[static_cast<std::size_t>(e.node)];
      const float* sc = st.scaler[static_cast<std::size_t>(st.active)].data();
      for (std::size_t c = 0; c < m_; ++c) {
        scaler_total_[c] -= static_cast<double>(sc[c]);
      }
    }
    stats_.serial_seconds += serial_sw.seconds();
  }

  // 2b. Execute.
  if (dispatch_ == DispatchMode::kPlan) {
    if (!recompute_targets_.empty()) {
      serial_sw.reset();
      {
        PLF_PROF_SCOPE(obs::kTimerPlanBuild);
        Stopwatch build_sw;
        build_plan();
        stats_.plan_build_seconds += build_sw.seconds();
      }
      stats_.serial_seconds += serial_sw.seconds();

      Stopwatch plf_sw;
      {
        PLF_PROF_SCOPE(obs::kTimerPlanExecute);
        backend_->run_plan(*kernels_, plan_);
      }
      stats_.plf_seconds += plf_sw.seconds();

      post_process_plan();
    }
  } else {
    execute_percall();
  }

  // 3. Fold the new scaler rows into the per-pattern total — incrementally
  // (same node order as the 2a subtraction), or a full resum over every
  // internal node when flagged (first evaluation, reject, topology change).
  serial_sw.reset();
  {
    PLF_PROF_SCOPE(obs::kTimerScalerSum);
    if (scaler_resum_) {
      scaler_total_.assign(m_, 0.0);
      for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
        const phylo::TreeNode& n = tree_.node(static_cast<int>(id));
        if (n.is_leaf()) continue;
        const NodeState& st = nodes_[id];
        const float* sc = st.scaler[static_cast<std::size_t>(st.active)].data();
        for (std::size_t c = 0; c < m_; ++c) scaler_total_[c] += sc[c];
      }
      scaler_resum_ = false;
      ++stats_.scaler_resums;
    } else {
      for (const RecomputeEntry& e : recompute_targets_) {
        if (e.remat) continue;  // same skip as the 2a subtraction pass
        const NodeState& st = nodes_[static_cast<std::size_t>(e.node)];
        const float* sc = st.scaler[static_cast<std::size_t>(e.target)].data();
        for (std::size_t c = 0; c < m_; ++c) {
          scaler_total_[c] += static_cast<double>(sc[c]);
        }
        ++stats_.scaler_delta_updates;
      }
    }
  }
  stats_.serial_seconds += serial_sw.seconds();

  // 4. Root reduction (with the +I invariant-sites mixture when enabled).
  Stopwatch reduce_sw;
  RootReduceArgs rr;
  const NodeState& root = nodes_[static_cast<std::size_t>(tree_.root())];
  rr.cl = arena_.data(clv_slot(tree_.root(), root.active));
  rr.ln_scaler_total = scaler_total_.data();
  rr.weights = data_.weights().data();
  const auto& pi = model_.pi();
  for (std::size_t i = 0; i < 4; ++i) rr.pi[i] = static_cast<float>(pi[i]);
  rr.K = k_;
  if (model_.params().p_invariant > 0.0) {
    for (std::size_t c = 0; c < m_; ++c) {
      float s = 0.0f;
      for (std::size_t st = 0; st < 4; ++st) {
        if ((const_mask_[c] >> st) & 1u) s += static_cast<float>(pi[st]);
      }
      const_lik_[c] = s;
    }
    rr.const_lik = const_lik_.data();
    rr.p_invariant = static_cast<float>(model_.params().p_invariant);
  }
  {
    PLF_PROF_SCOPE(obs::kTimerRootReduce);
    ln_lik_ = backend_->run_root_reduce(*kernels_, rr, m_);
  }
  ++stats_.reduce_calls;
  stats_.pattern_iterations += m_;
  stats_.plf_seconds += reduce_sw.seconds();

  // The evaluation's working set survives until here (the root reduction
  // reads the root CLV); from the next evaluation on, everything is fair
  // game for LRU eviction again.
  arena_.release_eval_pins();

  lik_valid_ = true;
}

void PlfEngine::set_instance_label(std::string label) {
  checker_.check();
  instance_label_ = std::move(label);
}

void PlfEngine::detach_thread() noexcept {
  checker_.detach();
  arena_.detach_thread();
}

void PlfEngine::publish_stats(obs::MetricsRegistry& registry) const {
  checker_.check();
  const auto set = [this, &registry](const char* name, double value) {
    if (instance_label_.empty()) {
      registry.set_gauge(registry.gauge(name), value);
    } else {
      registry.set_gauge(registry.gauge(instance_label_ + "." + name), value);
    }
  };
  set(obs::kGaugeEngineDownCalls, static_cast<double>(stats_.down_calls));
  set(obs::kGaugeEngineRootCalls, static_cast<double>(stats_.root_calls));
  set(obs::kGaugeEngineScaleCalls, static_cast<double>(stats_.scale_calls));
  set(obs::kGaugeEngineReduceCalls, static_cast<double>(stats_.reduce_calls));
  set(obs::kGaugeEngineTmBuilds, static_cast<double>(stats_.tm_builds));
  set(obs::kGaugeEnginePatternIterations,
      static_cast<double>(stats_.pattern_iterations));
  set(obs::kGaugeRepeatDownHitRate, stats_.down_repeat_hit_rate());
  set(obs::kGaugeRepeatRootHitRate, stats_.root_repeat_hit_rate());
  set(obs::kGaugeRepeatScaleHitRate, stats_.scale_repeat_hit_rate());
  set(obs::kGaugeRepeatCompressionRatio, stats_.repeat_compression_ratio());
  set(obs::kGaugeRepeatRebuildSeconds, stats_.repeat_rebuild_seconds);
  set(obs::kGaugeEnginePlanBuilds, static_cast<double>(stats_.plan_builds));
  set(obs::kGaugeEnginePlanOps, static_cast<double>(stats_.plan_ops));
  set(obs::kGaugeEnginePlanLevels, static_cast<double>(stats_.plan_levels));
  set(obs::kGaugeEngineScalerResums,
      static_cast<double>(stats_.scaler_resums));
  set(obs::kGaugeEngineScalerDeltaUpdates,
      static_cast<double>(stats_.scaler_delta_updates));
  set(obs::kGaugeEngineTipTtOps, static_cast<double>(stats_.tip_tt_ops));
  set(obs::kGaugeEngineTipTiOps, static_cast<double>(stats_.tip_ti_ops));
  set(obs::kGaugeEngineTipTablesBuilt,
      static_cast<double>(stats_.tip_tables_built));
  publish_arena_gauges(registry);
}

void PlfEngine::publish_arena_gauges(obs::MetricsRegistry& registry) const {
  const ArenaCounters ac = arena_.counters();
  const auto set = [this, &registry](const char* name, double value) {
    if (instance_label_.empty()) {
      registry.set_gauge(registry.gauge(name), value);
    } else {
      registry.set_gauge(registry.gauge(instance_label_ + "." + name), value);
    }
  };
  set(obs::kGaugeEngineClvBytes, static_cast<double>(ac.resident_bytes));
  set(obs::kGaugeArenaBudgetBytes, static_cast<double>(arena_.budget_bytes()));
  set(obs::kGaugeArenaEvictions, static_cast<double>(ac.evictions));
  set(obs::kGaugeArenaRecomputeOps, static_cast<double>(ac.recompute_ops));
  set(obs::kGaugeArenaHitRate, ac.hit_rate());
}

void PlfEngine::save_state(util::BinaryWriter& w) const {
  checker_.check();
  PLF_CHECK(!in_proposal_, "save_state: close the open proposal first");

  // Config fingerprint, checked on restore: a checkpoint only resumes into
  // an engine shaped like the one that wrote it.
  w.section("ENGI");
  w.u64(m_);
  w.u64(k_);
  w.u64(tree_.n_nodes());
  w.u64(tree_.n_taxa());

  tree_.save(w);

  w.section("MODL");
  const phylo::GtrParams& p = model_.params();
  for (double r : p.rates) w.f64(r);
  for (double f : p.pi) w.f64(f);
  w.f64(p.gamma_shape);
  w.u64(p.n_rate_categories);
  w.f64(p.p_invariant);

  // Internal nodes, in id order: the active buffer index, the active scaler
  // row (its exact f32 bits — scaler_total_ was accumulated from them), and
  // the active CLV when it is arena-resident. Evicted CLVs are omitted on
  // purpose: the recompute closure rematerializes them bit-exactly from the
  // tips, which is the same guarantee the budgeted arena already relies on.
  w.section("NODE");
  for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
    if (tree_.node(static_cast<int>(id)).is_leaf()) continue;
    const NodeState& st = nodes_[id];
    w.u8(static_cast<std::uint8_t>(st.active));
    w.f32_array(st.scaler[static_cast<std::size_t>(st.active)].data(), m_);
    const int slot = clv_slot(static_cast<int>(id), st.active);
    const bool resident = arena_.resident(slot);
    w.u8(resident ? 1 : 0);
    if (resident) w.f32_array(arena_.data(slot), m_ * k_ * 4);
  }

  // The accumulated scaler total must round-trip bit-exactly: a fresh resum
  // would differ in the low bits from the incremental subtract/add history,
  // shifting every subsequent likelihood. The pending-resum flag rides along
  // so a checkpoint taken right after a reject resums exactly once, like the
  // uninterrupted run.
  w.section("SCLR");
  w.f64_array(scaler_total_.data(), m_);
  w.u8(scaler_resum_ ? 1 : 0);
  w.f64(ln_lik_);
  w.u8(lik_valid_ ? 1 : 0);
}

void PlfEngine::restore_state(util::BinaryReader& r) {
  checker_.check();
  PLF_CHECK(!in_proposal_, "restore_state: close the open proposal first");

  r.section("ENGI");
  const std::uint64_t m = r.u64();
  const std::uint64_t k = r.u64();
  const std::uint64_t n_nodes = r.u64();
  const std::uint64_t n_taxa = r.u64();
  PLF_CHECK(m == m_ && k == k_ && n_nodes == tree_.n_nodes() &&
                n_taxa == tree_.n_taxa(),
            "restore_state: checkpoint was written by a differently-"
            "configured engine (pattern/category/tree shape mismatch)");

  tree_ = phylo::Tree::load(r);

  r.section("MODL");
  phylo::GtrParams p;
  for (double& v : p.rates) v = r.f64();
  for (double& v : p.pi) v = r.f64();
  p.gamma_shape = r.f64();
  p.n_rate_categories = static_cast<std::size_t>(r.u64());
  p.p_invariant = r.f64();
  PLF_CHECK(p.n_rate_categories == k_,
            "restore_state: rate category count is fixed at construction");
  model_ = phylo::SubstitutionModel(p);

  // Branch matrices are pure functions of (model, branch length): rebuild
  // every branch eagerly and leave it CLEAN. Leaving branches dirty instead
  // would be wrong, not just lazy — the first post-restore proposal's
  // reject() must flip back to real pre-proposal buffers, never to buffers
  // that are empty because they predate the checkpoint.
  tp_builds_ = 0;
  for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
    const phylo::TreeNode& n = tree_.node(static_cast<int>(id));
    if (n.parent == phylo::kNoNode) continue;
    BranchState& st = branches_[id];
    st.active = 0;
    st.dirty = false;
    st.flip_epoch = 0;
    st.tm[0] = model_.transition_matrices(
        tree_.branch_length(static_cast<int>(id)));
    if (n.is_leaf()) {
      st.tp[0] = TipPartial(st.tm[0]);
      st.tp_stamp[0] = ++tp_builds_;
      st.tp_stamp[1] = 0;
    }
    ++stats_.tm_builds;
  }

  // Drop every pre-restore CLV before loading the checkpointed ones: a stale
  // buffer left "resident" would satisfy the recompute closure's residency
  // test while holding the wrong contents.
  arena_.evict_all();

  r.section("NODE");
  for (std::size_t id = 0; id < tree_.n_nodes(); ++id) {
    if (tree_.node(static_cast<int>(id)).is_leaf()) continue;
    NodeState& st = nodes_[id];
    const std::uint8_t active = r.u8();
    PLF_CHECK(active <= 1, "restore_state: corrupt buffer index");
    st.active = active;
    const std::vector<float> scaler = r.f32_array();
    PLF_CHECK(scaler.size() == m_, "restore_state: scaler row size mismatch");
    st.scaler[static_cast<std::size_t>(st.active)].assign(scaler.begin(),
                                                          scaler.end());
    st.scaler[static_cast<std::size_t>(st.active ^ 1)].assign(m_, 0.0f);
    st.dirty = false;
    st.flip_epoch = 0;
    st.pair_stamp_l = 0;  // pair tables revalidate against the new tp stamps
    st.pair_stamp_r = 0;
    if (r.u8() != 0) {
      float* dst = arena_.acquire(clv_slot(static_cast<int>(id), st.active));
      const std::vector<float> cl = r.f32_array();
      PLF_CHECK(cl.size() == m_ * k_ * 4,
                "restore_state: CLV buffer size mismatch");
      std::memcpy(dst, cl.data(), cl.size() * sizeof(float));
    }
  }

  r.section("SCLR");
  const std::vector<double> total = r.f64_array();
  PLF_CHECK(total.size() == m_, "restore_state: scaler total size mismatch");
  scaler_total_.assign(total.begin(), total.end());
  scaler_resum_ = r.u8() != 0;
  ln_lik_ = r.f64();
  lik_valid_ = r.u8() != 0;

  // Repeat classes re-identify lazily (deterministic from data + tree), and
  // the proposal undo machinery starts from a clean slate.
  if (repeats_enabled_) repeats_.invalidate_all();
  proposal_epoch_ = 0;
  saved_ln_lik_ = 0.0;
  saved_lik_valid_ = false;
  flipped_nodes_.clear();
  flipped_branches_.clear();
  node_dirty_marks_.clear();
  branch_dirty_marks_.clear();
  pre_dirty_nodes_.clear();
  pre_dirty_branches_.clear();
  old_lengths_.clear();
  nni_log_.clear();
  spr_log_.clear();
  old_params_.reset();

  publish_arena_gauges(obs::MetricsRegistry::global());
}

double PlfEngine::log_likelihood() {
  checker_.check();
  if (!lik_valid_) evaluate();
  return ln_lik_;
}

const float* PlfEngine::node_cl(int node) const {
  const NodeState& st = nodes_[static_cast<std::size_t>(node)];
  PLF_CHECK(!tree_.node(node).is_leaf(), "node_cl: leaf nodes carry no cl");
  return arena_.data(clv_slot(node, st.active));
}

bool PlfEngine::node_resident(int node) const {
  PLF_CHECK(!tree_.node(node).is_leaf(),
            "node_resident: leaf nodes carry no cl");
  const NodeState& st = nodes_[static_cast<std::size_t>(node)];
  return arena_.resident(clv_slot(node, st.active));
}

void PlfEngine::evict_node_for_test(int node) {
  PLF_CHECK(!tree_.node(node).is_leaf(),
            "evict_node_for_test: leaf nodes carry no cl");
  const NodeState& st = nodes_[static_cast<std::size_t>(node)];
  arena_.evict_slot_for_test(clv_slot(node, st.active));
}

}  // namespace plf::core
