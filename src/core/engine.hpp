// PlfEngine: orchestrates PLF kernel invocations over a tree.
//
// This is the role MrBayes' likelihood machinery plays around the three hot
// kernels: it owns the conditional-likelihood vectors of every internal node,
// rebuilds per-branch transition matrices when branch lengths or model
// parameters change, recomputes only the nodes a proposal dirtied
// (children-before-parents), rescales each node (CondLikeScaler), and
// finishes with the root reduction.
//
// State is double-buffered exactly like MrBayes' "touch/flip" scheme: a
// recomputation writes into the inactive buffer and flips, so rejecting a
// proposal is a pointer flip back — no recomputation. This keeps the PLF
// call pattern (the workload the paper measures) faithful to the original
// program.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/clv_arena.hpp"
#include "core/kernels.hpp"
#include "core/plan.hpp"
#include "obs/metrics.hpp"
#include "core/repeats.hpp"
#include "core/tip_partial.hpp"
#include "phylo/model.hpp"
#include "phylo/patterns.hpp"
#include "phylo/tree.hpp"
#include "util/aligned.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::util {
class BinaryWriter;
class BinaryReader;
}  // namespace plf::util

namespace plf::core {

/// Counters describing the PLF work performed (consumed by the architecture
/// timing models and the Fig. 12 breakdown).
struct EngineStats {
  std::uint64_t down_calls = 0;
  std::uint64_t root_calls = 0;
  std::uint64_t scale_calls = 0;
  std::uint64_t reduce_calls = 0;
  std::uint64_t tm_builds = 0;            ///< per-branch matrix rebuilds
  std::uint64_t pattern_iterations = 0;   ///< sites actually iterated by kernels
  double plf_seconds = 0.0;               ///< wall time inside kernels
  double serial_seconds = 0.0;            ///< matrix rebuilds + scaler totals

  // Site-repeat caching (docs/SITE_REPEATS.md). A "hit" is a kernel call that
  // took the compacted path; sites_total/sites_computed cover hits only, so
  // their ratio is the realized compression.
  std::uint64_t repeat_down_hits = 0;
  std::uint64_t repeat_root_hits = 0;
  std::uint64_t repeat_scale_hits = 0;
  std::uint64_t repeat_sites_total = 0;     ///< m summed over compacted calls
  std::uint64_t repeat_sites_computed = 0;  ///< unique classes summed over them
  double repeat_rebuild_seconds = 0.0;      ///< class identification time

  // Plan dispatch (docs/EXECUTION_PLAN.md). One build per evaluation with
  // dirty nodes; plan_ops/plan_levels accumulate over builds, so their ratio
  // is the mean level width — the spawn/sync amortization factor.
  std::uint64_t plan_builds = 0;
  std::uint64_t plan_ops = 0;
  std::uint64_t plan_levels = 0;
  double plan_build_seconds = 0.0;

  // Scaler-total bookkeeping: full O(nodes*m) resums (first evaluation and
  // after topology changes/rejects) vs incremental delta updates (one
  // subtract+add per recomputed node).
  std::uint64_t scaler_resums = 0;
  std::uint64_t scaler_delta_updates = 0;

  // Tip-specialized plan ops (docs/KERNELS.md): cherry ops dispatched to the
  // pair-table gather, tip×inner ops to the branch-free kernel, and how many
  // 256-pair tables were (re)built — a rebuild is needed only when a cherry's
  // child branch matrices changed since the cached table was computed.
  std::uint64_t tip_tt_ops = 0;
  std::uint64_t tip_ti_ops = 0;
  std::uint64_t tip_tables_built = 0;

  /// Sites per computed class on the compacted calls (1.0 when none ran).
  double repeat_compression_ratio() const {
    return repeat_sites_computed == 0
               ? 1.0
               : static_cast<double>(repeat_sites_total) /
                     static_cast<double>(repeat_sites_computed);
  }
  double down_repeat_hit_rate() const {
    return down_calls == 0 ? 0.0
                           : static_cast<double>(repeat_down_hits) /
                                 static_cast<double>(down_calls);
  }
  double root_repeat_hit_rate() const {
    return root_calls == 0 ? 0.0
                           : static_cast<double>(repeat_root_hits) /
                                 static_cast<double>(root_calls);
  }
  double scale_repeat_hit_rate() const {
    return scale_calls == 0 ? 0.0
                            : static_cast<double>(repeat_scale_hits) /
                                  static_cast<double>(scale_calls);
  }
};

class PlfEngine {
 public:
  PlfEngine(phylo::PatternMatrix data, const phylo::GtrParams& params,
            phylo::Tree tree, ExecutionBackend& backend,
            KernelVariant variant = KernelVariant::kSimdCol,
            SiteRepeatsMode site_repeats = SiteRepeatsMode::kAuto,
            DispatchMode dispatch = DispatchMode::kPlan,
            ClvBudget clv_budget = ClvBudget{});

  /// Evaluate the log likelihood, recomputing whatever is dirty.
  double log_likelihood();

  // --- proposal protocol (MCMC) ---
  void begin_proposal();
  void accept();
  void reject();
  bool in_proposal() const { return in_proposal_; }

  // --- mutations (usable inside or outside a proposal) ---
  void set_branch_length(int node, double length);
  void apply_nni(int v, bool swap_left);
  /// Subtree pruning and regrafting (see phylo::Tree::spr). NOTE: undo logs
  /// are replayed per category (NNI, lengths, SPR); a single proposal must
  /// not interleave SPR with other topology moves.
  void apply_spr(int s, int target, double split_x);
  void set_model(const phylo::GtrParams& params);

  const phylo::Tree& tree() const { return tree_; }
  const phylo::GtrParams& model_params() const { return model_.params(); }
  const phylo::SubstitutionModel& model() const { return model_; }
  const phylo::PatternMatrix& data() const { return data_; }
  ExecutionBackend& backend() { return *backend_; }
  KernelVariant variant() const { return kernels_->variant; }

  const EngineStats& stats() const {
    checker_.check();
    return stats_;
  }
  void reset_stats() {
    checker_.check();
    stats_ = EngineStats{};
  }

  /// Fold the current EngineStats into `registry` as "engine.*" gauges
  /// (call counts, pattern iterations, site-repeat hit rates and realized
  /// compression). Gauges are last-write-wins, so repeated publication is
  /// idempotent. Cold path: available regardless of PLF_PROFILING.
  void publish_stats(obs::MetricsRegistry& registry) const;

  /// Label prepended (as "<label>.") to every gauge name this engine
  /// publishes, so concurrent instances sharing one registry don't clobber
  /// each other's engine.*/arena.* gauges. Empty (the default) keeps the
  /// historical unprefixed names for single-engine runs.
  void set_instance_label(std::string label);
  const std::string& instance_label() const { return instance_label_; }

  /// Release thread confinement (engine + arena) so this engine can be
  /// handed off serially to another thread — exec::InstanceScheduler driver
  /// threads, post-run stats reads from the coordinator. The next entry
  /// point binds the calling thread (see util::ThreadChecker).
  void detach_thread() noexcept;

  // --- checkpoint/restore (docs/SHARDING.md) ---
  /// Serialize everything a 0-ULP resume needs: tree (exact branch-length
  /// bits), model parameters, each internal node's active scaler row and —
  /// when arena-resident — its active CLV buffer, the accumulated
  /// scaler-total bits, and the cached likelihood. Requires no open
  /// proposal. EngineStats are run-local and intentionally not saved.
  void save_state(util::BinaryWriter& w) const;
  /// Inverse of save_state, into an engine constructed with the SAME data,
  /// backend, kernel variant, dispatch mode, and rate-category count (a
  /// config fingerprint is checked; bit-identity additionally requires the
  /// same kernel configuration, which cannot be fingerprinted). Branch
  /// transition matrices are rebuilt eagerly (pure functions of model x
  /// length), non-resident CLVs rematerialize on the next evaluation, and
  /// site-repeat classes re-identify lazily — all deterministic, so the
  /// post-restore likelihood trajectory is bit-identical to the
  /// uninterrupted run's.
  void restore_state(util::BinaryReader& r);

  /// How evaluations reach the backend: per-call kernels or dependency-
  /// leveled plans. Fixed at construction; results are bit-identical.
  DispatchMode dispatch_mode() const { return dispatch_; }

  /// True when plan dispatch marks cherry/tip-child ops for the lookup-table
  /// kernels (backend advertises Capabilities::kTipKernels; per-call dispatch
  /// stays fully generic as the A/B baseline).
  bool tip_kernels_enabled() const { return tip_kernels_enabled_; }

  /// Requested site-repeats policy (the effective path also depends on the
  /// backend's Capabilities::kSiteRepeats and each node's compression).
  SiteRepeatsMode site_repeats_mode() const { return repeats_mode_; }
  /// True when this engine can ever take the compacted path.
  bool site_repeats_enabled() const { return repeats_enabled_; }
  /// Sites-per-class averaged over internal nodes (identification must have
  /// run, i.e. after the first log_likelihood() with repeats enabled).
  double repeat_mean_compression() const {
    return repeats_.initialized() ? repeats_.mean_compression() : 1.0;
  }

  /// Read-only view of an internal node's active conditional likelihoods
  /// (tests/diagnostics). PLF_CHECKs that the buffer is arena-resident — an
  /// evicted CLV has no storage until an evaluation rematerializes it.
  const float* node_cl(int node) const;

  // --- budgeted CLV arena (docs/MEMORY.md) ---
  /// The arena that owns every internal node's CLV storage.
  const ClvArena& arena() const { return arena_; }
  /// True when `node`'s ACTIVE CLV buffer is currently resident.
  bool node_resident(int node) const;
  /// Force-evict `node`'s active CLV buffer so the next evaluation must grow
  /// its recompute set with this ancestor (test hook for the remat path).
  void evict_node_for_test(int node);
  /// The most recently built execution plan (tests: leveling of evicted
  /// ancestors). Meaningful after a plan-dispatch evaluation.
  const PlfPlan& last_plan() const { return plan_; }

 private:
  struct NodeState {
    std::array<aligned_vector<float>, 2> scaler;
    int active = 0;
    bool dirty = true;
    /// Last proposal in which this node flipped. A second recomputation
    /// within the same proposal must overwrite the ACTIVE buffer instead of
    /// flipping again — the inactive buffer holds the pre-proposal state
    /// that reject() restores.
    std::uint64_t flip_epoch = 0;
    /// Last proposal in which the dirty flag was RAISED. A node that enters
    /// a proposal already dirty (dirty_epoch != proposal_epoch_) has no
    /// valid pre-proposal buffer for reject() to flip back to, so reject
    /// must re-raise its dirty flag instead of trusting the restored buffer.
    std::uint64_t dirty_epoch = 0;
    /// Cherry nodes only: cached tip×tip pair table and the tp build stamps
    /// it was computed from (see BranchState::tp_stamp). Single-buffered on
    /// purpose — the table is a pure function of the two stamped inputs, so
    /// a stamp mismatch (proposal, reject, topology move) just rebuilds it.
    TipPairTable pair;
    std::uint64_t pair_stamp_l = 0;
    std::uint64_t pair_stamp_r = 0;
  };
  struct BranchState {
    std::array<phylo::TransitionMatrices, 2> tm;
    std::array<TipPartial, 2> tp;
    int active = 0;
    bool dirty = true;
    std::uint64_t flip_epoch = 0;   ///< see NodeState::flip_epoch
    std::uint64_t dirty_epoch = 0;  ///< see NodeState::dirty_epoch
    /// Monotonic build stamp per tip-partial buffer (leaves only; 0 = never
    /// built). Stamps are globally unique across branches, so a cherry's
    /// cached pair table can be validated against its current children by
    /// stamp equality alone, even after topology moves swap the children.
    std::array<std::uint64_t, 2> tp_stamp{};
  };

  /// One entry of the recompute postorder. `remat` marks an eviction-driven
  /// rebuild of a CLEAN node: its target is the ACTIVE buffer (no flip, no
  /// undo-log entry) and the kernels reproduce the evicted bits exactly, so
  /// the incremental scaler passes skip it — subtracting and re-adding an
  /// identical row is not a no-op in floating point.
  struct RecomputeEntry {
    int node;
    int target;
    bool remat;
  };

  /// Arena slot of an internal node's CLV buffer `buf` (0/1).
  int clv_slot(int node, int buf) const { return 2 * node + buf; }

  void mark_node_dirty(int node);
  void mark_path_dirty(int from_node);
  void mark_branch_dirty(int node);
  void rebuild_branch(int node) PLF_REQUIRES(checker_);
  ChildArgs make_child(int node) const;
  /// make_child, except a child this evaluation also recomputes resolves to
  /// its TARGET buffer: plan dispatch defers all flips to post-processing,
  /// so the active index still names the pre-evaluation state while the
  /// plan's ops must read what earlier levels will have written.
  ChildArgs make_plan_child(int node) const;
  void evaluate() PLF_REQUIRES(checker_);
  /// The evaluation phases evaluate() composes (docs/EXECUTION_PLAN.md):
  /// collect the dirty postorder with each node's write target, then either
  /// replay the per-call loop or build-plan / execute-plan / post-process.
  void collect_recompute_targets() PLF_REQUIRES(checker_);
  /// Pin every CLV buffer this evaluation reads or writes, in the documented
  /// LRU touch order (external reads in recompute postorder, then write
  /// targets in recompute postorder), acquiring storage for the targets.
  /// Runs before any kernel, so no kernel ever sees an evicted pointer.
  void stage_arena() PLF_REQUIRES(checker_);
  void build_plan() PLF_REQUIRES(checker_);
  void execute_percall() PLF_REQUIRES(checker_);
  /// Deferred flips + dirty clearing after a plan executes.
  void post_process_plan() PLF_REQUIRES(checker_);
  /// Repeat classes to compact node `id` with, or nullptr for the dense path
  /// (mode/backend/compression gate). Identification must be fresh.
  const NodeRepeats* repeats_for(int id) const;
  /// Copy each repeat class's representative CLV block and scaler entry to
  /// the class's duplicate sites (representatives precede duplicates).
  void scatter_repeats(const NodeRepeats& nr, float* cl, float* ln_scaler) const;
  /// Arena footprint gauges (engine.clv_bytes + arena.*). Called from the
  /// constructor against the global registry — before the first snapshot any
  /// --metrics-json run takes — and from publish_stats.
  void publish_arena_gauges(obs::MetricsRegistry& registry) const;

  phylo::PatternMatrix data_;
  phylo::SubstitutionModel model_;
  phylo::Tree tree_;
  ExecutionBackend* backend_;
  const KernelSet* kernels_;

  std::size_t m_ = 0;  ///< pattern count
  std::size_t k_ = 0;  ///< rate categories

  std::vector<NodeState> nodes_;     ///< indexed by node id; internals only
  std::vector<BranchState> branches_;///< indexed by node id; all but root

  // Site-repeat caching (see core/repeats.hpp). Classes are invariant under
  // branch-length/model changes; topology moves invalidate the affected
  // root paths and evaluate() refreshes lazily.
  SiteRepeatsMode repeats_mode_ = SiteRepeatsMode::kAuto;
  bool repeats_enabled_ = false;  ///< mode != off && backend supports it
  SiteRepeats repeats_;

  // Tip-specialized plan ops: enabled when the backend can dispatch them.
  // tp_builds_ stamps every tip-partial rebuild (see BranchState::tp_stamp).
  bool tip_kernels_enabled_ = false;
  std::uint64_t tp_builds_ = 0;

  // Batched dispatch (core/plan.hpp). recompute_targets_ is the dirty
  // postorder with each node's resolved write target — the shared input of
  // both dispatch paths and of the incremental scaler passes, which must
  // walk it in identical order for cross-mode bit-identity.
  DispatchMode dispatch_ = DispatchMode::kPlan;
  PlfPlan plan_;
  std::vector<RecomputeEntry> recompute_targets_;
  std::vector<char> recompute_;    ///< node id -> in recompute set (scratch)
  std::vector<int> plan_target_;   ///< node id -> target buffer, -1 outside

  /// Budgeted storage for every internal node's two CLV buffers; slot ids
  /// come from clv_slot(). Unlimited budgets preallocate eagerly (historical
  /// behaviour); finite budgets allocate lazily and evict LRU during
  /// stage_arena(). Tip masks/partials and scaler rows are engine-owned and
  /// never evicted.
  ClvArena arena_;

  aligned_vector<double> scaler_total_; ///< per-pattern summed log scalers
  /// When set, the next evaluation re-sums scaler_total_ from every internal
  /// node instead of applying per-node deltas: required on first use and
  /// whenever buffer flips were reverted wholesale (reject) or node
  /// ancestry changed (NNI/SPR).
  bool scaler_resum_ = true;
  /// +I support: per-pattern AND of all taxon masks (which states could be
  /// shared by every taxon; fixed by the data) and the resulting
  /// invariant-site likelihoods under the current pi (refreshed per eval).
  std::vector<phylo::StateMask> const_mask_;
  aligned_vector<float> const_lik_;

  double ln_lik_ = 0.0;
  bool lik_valid_ = false;

  /// Gauge-name prefix for multi-instance runs (see set_instance_label).
  std::string instance_label_;

  // Undo log for the active proposal.
  bool in_proposal_ = false;
  std::uint64_t proposal_epoch_ = 0;
  double saved_ln_lik_ = 0.0;
  bool saved_lik_valid_ = false;
  std::vector<int> flipped_nodes_;
  std::vector<int> flipped_branches_;
  std::vector<int> node_dirty_marks_;
  std::vector<int> branch_dirty_marks_;
  // Nodes/branches that entered the current proposal already dirty and were
  // recomputed inside it: their pre-proposal buffers were stale (or never
  // built at all), so reject() must re-mark them dirty after flipping back.
  std::vector<int> pre_dirty_nodes_;
  std::vector<int> pre_dirty_branches_;
  std::vector<std::pair<int, double>> old_lengths_;
  std::vector<std::pair<int, bool>> nni_log_;
  std::vector<phylo::Tree::SprUndo> spr_log_;
  std::optional<phylo::GtrParams> old_params_;

  /// Thread confinement: one engine serves one MCMC chain on one thread
  /// (parallelism lives INSIDE the backend's kernel dispatch, never across
  /// engine entry points). The checker turns that rule into a TSA capability:
  /// stats_ accumulation — the state most tempting to read from a monitoring
  /// thread — is GUARDED_BY it, the evaluation phases REQUIRE it, and public
  /// entry points assert it (checked builds also get a runtime tripwire).
  util::ThreadChecker checker_;
  EngineStats stats_ PLF_GUARDED_BY(checker_);
};

}  // namespace plf::core
