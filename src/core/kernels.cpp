#include "core/kernels.hpp"

#include "util/error.hpp"

namespace plf::core {

namespace detail {
extern const KernelSet kScalarKernels;
extern const KernelSet kSimdRowKernels;
extern const KernelSet kSimdColKernels;
extern const KernelSet kSimdCol8Kernels;
}  // namespace detail

std::string to_string(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar: return "scalar";
    case KernelVariant::kSimdRow: return "simd-row (approach i)";
    case KernelVariant::kSimdCol: return "simd-col (approach ii)";
    case KernelVariant::kSimdCol8: return "simd-col8 (2-category)";
  }
  return "?";
}

const KernelSet& kernels(KernelVariant v) {
  switch (v) {
    case KernelVariant::kScalar: return detail::kScalarKernels;
    case KernelVariant::kSimdRow: return detail::kSimdRowKernels;
    case KernelVariant::kSimdCol: return detail::kSimdColKernels;
    case KernelVariant::kSimdCol8: return detail::kSimdCol8Kernels;
  }
  throw Error("unknown kernel variant");
}

}  // namespace plf::core
