#include "core/plan.hpp"

#include <algorithm>
#include <cstring>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace plf::core {

std::string to_string(DispatchMode m) {
  switch (m) {
    case DispatchMode::kPerCall: return "percall";
    case DispatchMode::kPlan: return "plan";
  }
  return "?";
}

DispatchMode dispatch_mode_from_string(const std::string& s) {
  if (s == "percall") return DispatchMode::kPerCall;
  if (s == "plan") return DispatchMode::kPlan;
  throw Error("unknown dispatch mode '" + s + "' (expected percall|plan)");
}

void PlfPlan::reset(std::size_t n_nodes, std::size_t m) {
  ops_.clear();
  op_level_.clear();
  level_offsets_.clear();
  node_level_.assign(n_nodes, -1);
  m_ = m;
  finalized_ = false;
}

void PlfPlan::add(const PlfOp& op, std::size_t level) {
  PLF_CHECK(!finalized_, "PlfPlan::add after finalize");
  PLF_CHECK(op.node >= 0 &&
                static_cast<std::size_t>(op.node) < node_level_.size(),
            "PlfOp node id out of range");
  PLF_CHECK(node_level_[static_cast<std::size_t>(op.node)] == -1,
            "duplicate PlfOp for node");
  ops_.push_back(op);
  op_level_.push_back(level);
  node_level_[static_cast<std::size_t>(op.node)] = static_cast<int>(level);
}

void PlfPlan::finalize() {
  PLF_CHECK(!finalized_, "PlfPlan::finalize called twice");
  std::size_t n_levels = 0;
  for (std::size_t l : op_level_) n_levels = std::max(n_levels, l + 1);
  // Counting sort by level: stable, so within a level the engine's postorder
  // insertion order — the order per-call dispatch uses — is preserved.
  std::vector<std::size_t> counts(n_levels, 0);
  for (std::size_t l : op_level_) counts[l]++;
  level_offsets_.assign(n_levels + 1, 0);
  for (std::size_t l = 0; l < n_levels; ++l) {
    level_offsets_[l + 1] = level_offsets_[l] + counts[l];
  }
  std::vector<PlfOp> sorted(ops_.size());
  std::vector<std::size_t> cursor(level_offsets_.begin(),
                                  level_offsets_.end() - 1);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    sorted[cursor[op_level_[i]]++] = ops_[i];
  }
  ops_ = std::move(sorted);
  finalized_ = true;
}

int PlfPlan::level_of_node(int node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= node_level_.size()) {
    return -1;
  }
  return node_level_[static_cast<std::size_t>(node)];
}

std::vector<int> compute_levels(const phylo::Tree& tree,
                                const std::vector<char>& recompute) {
  PLF_CHECK(recompute.size() == tree.n_nodes(),
            "recompute set size mismatches tree");
  std::vector<int> level(tree.n_nodes(), -1);
  // Postorder guarantees children's levels are settled before the parent.
  for (int id : tree.postorder_internals()) {
    const auto uid = static_cast<std::size_t>(id);
    if (!recompute[uid]) continue;
    int lvl = 0;
    const phylo::TreeNode& nd = tree.node(id);
    for (int child : {nd.left, nd.right}) {
      if (child == phylo::kNoNode) continue;
      const int cl = level[static_cast<std::size_t>(child)];
      lvl = std::max(lvl, cl + 1);  // cl == -1 (valid input) contributes 0
    }
    level[uid] = lvl;
  }
  return level;
}

void scatter_repeats(const NodeRepeats& nr, std::size_t K, float* cl,
                     float* ln_scaler) {
  const std::size_t m = nr.class_of_site.size();
  const std::size_t block = K * 4;
  for (std::size_t c = 0; c < m; ++c) {
    const std::uint32_t rep = nr.unique_sites[nr.class_of_site[c]];
    if (rep == c) continue;  // representatives are first occurrences
    std::memcpy(cl + c * block, cl + static_cast<std::size_t>(rep) * block,
                block * sizeof(float));
    if (ln_scaler != nullptr) ln_scaler[c] = ln_scaler[rep];
  }
}

void scatter_op(const PlfOp& op) {
  if (op.repeats == nullptr) return;
  scatter_repeats(*op.repeats, op.args.down.K, op.args.down.out,
                  op.scale.ln_scaler);
}

}  // namespace plf::core
