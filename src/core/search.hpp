// Maximum-likelihood tree search: NNI hill climbing with branch-length
// optimization — the RAxML-style counterpart of the Bayesian chain, built on
// the same PLF engine (and therefore on the same fine-grain parallel
// kernels). The proposal protocol makes trial rearrangements cheap: an NNI
// that does not improve the likelihood is rolled back by a buffer flip.
#pragma once

#include <cstdint>

#include "core/engine.hpp"
#include "core/optimize.hpp"

namespace plf::core {

struct SearchOptions {
  int max_rounds = 20;              ///< NNI sweeps over all internal edges
  double improvement_epsilon = 1e-3;///< lnL gain required to accept a move
  OptimizeOptions branch_options;
  int branch_rounds_per_sweep = 1;  ///< full branch-optimization passes
};

struct SearchResult {
  double ln_likelihood = 0.0;
  int rounds = 0;            ///< NNI sweeps performed
  int accepted_moves = 0;    ///< NNIs kept
  std::uint64_t evaluations = 0;
};

/// Hill-climb from the engine's current state; the engine ends at the best
/// tree found (a local optimum of the NNI neighborhood).
SearchResult hill_climb(PlfEngine& engine,
                        const SearchOptions& options = SearchOptions{});

}  // namespace plf::core
