#include "core/clv_arena.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/kernel_contracts.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace plf::core {

std::size_t ClvBudget::resolve(std::size_t full_bytes,
                               std::size_t min_bytes) const {
  PLF_CHECK(min_bytes <= full_bytes,
            "clv budget: minimum working set exceeds the full CLV pool");
  std::size_t bytes_wanted = full_bytes;
  switch (kind) {
    case Kind::kUnlimited:
      bytes_wanted = full_bytes;
      break;
    case Kind::kBytes:
      bytes_wanted = bytes;
      break;
    case Kind::kFraction:
      bytes_wanted = static_cast<std::size_t>(
          std::ceil(fraction * static_cast<double>(full_bytes)));
      break;
  }
  // Clamp UP to the minimum feasible budget: one buffer per internal node,
  // the worst-case pinned working set of a single evaluation. A sweep down
  // to "0.25" therefore runs (at the floor) instead of failing.
  return bytes_wanted < min_bytes ? min_bytes : bytes_wanted;
}

ClvBudget clv_budget_from_string(const std::string& s) {
  PLF_CHECK(!s.empty(), "clv budget: empty value");
  if (s == "unlimited" || s == "none") return ClvBudget{};

  std::string num = s;
  std::size_t multiplier = 1;
  const char suffix =
      static_cast<char>(std::tolower(static_cast<unsigned char>(s.back())));
  if (suffix == 'k' || suffix == 'm' || suffix == 'g') {
    multiplier = suffix == 'k' ? (std::size_t{1} << 10)
                               : (suffix == 'm' ? (std::size_t{1} << 20)
                                                : (std::size_t{1} << 30));
    num = s.substr(0, s.size() - 1);
    PLF_CHECK(!num.empty(), "clv budget: bare size suffix '" + s + "'");
  }

  char* end = nullptr;
  const double value = std::strtod(num.c_str(), &end);
  PLF_CHECK(end != nullptr && *end == '\0' && end != num.c_str(),
            "clv budget: cannot parse '" + s + "'");
  PLF_CHECK(value > 0.0, "clv budget: value must be positive, got '" + s + "'");

  ClvBudget budget;
  const bool has_dot = num.find('.') != std::string::npos;
  if (multiplier == 1 && (value <= 1.0 || has_dot)) {
    // "0.5", "1.0", "1" — a fraction of the full CLV pool.
    PLF_CHECK(value <= 1.0,
              "clv budget: fraction must be in (0, 1], got '" + s + "'");
    budget.kind = ClvBudget::Kind::kFraction;
    budget.fraction = value;
    return budget;
  }
  budget.kind = ClvBudget::Kind::kBytes;
  budget.bytes = static_cast<std::size_t>(value * static_cast<double>(multiplier));
  return budget;
}

std::string to_string(const ClvBudget& budget) {
  switch (budget.kind) {
    case ClvBudget::Kind::kUnlimited:
      return "unlimited";
    case ClvBudget::Kind::kBytes:
      return std::to_string(budget.bytes) + "B";
    case ClvBudget::Kind::kFraction: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4g", budget.fraction);
      return std::string("frac:") + buf;
    }
  }
  return "?";
}

void ClvArena::init(std::size_t n_slots, std::size_t slot_floats,
                    std::size_t budget_bytes) {
  checker_.check();
  PLF_CHECK(slots_.empty(), "clv arena: init() called twice");
  PLF_CHECK(n_slots > 0, "clv arena: no slots");
  slot_floats_ = slot_floats;
  slot_bytes_ = slot_floats * sizeof(float);
  budget_bytes_ = budget_bytes;
  capacity_slots_ = slot_bytes_ == 0 ? n_slots : budget_bytes_ / slot_bytes_;
  PLF_CHECK(capacity_slots_ >= 1,
            "clv arena: budget smaller than a single CLV buffer - raise "
            "--clv-budget");
  slots_.resize(n_slots);
  detail::check_arena(*this);
}

float* ClvArena::acquire(int slot) {
  checker_.check();
  PLF_CHECK(slot >= 0 && static_cast<std::size_t>(slot) < slots_.size(),
            "clv arena: slot id out of range");
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.resident) {
    // O(1) touch: unlink and re-append at the MRU end of the intrusive list.
    lru_unlink(slot);
    lru_push_mru(slot);
    {
      util::MutexLock lock(stats_m_);
      ++counters_.hits;
    }
    detail::check_arena(*this);
    return s.cl.data();
  }
  // Evict *before* allocating so the resident total never exceeds the budget,
  // even transiently.
  while (resident_count_ >= capacity_slots_) evict_one();
  s.cl.assign(slot_floats_, 0.0f);
  s.resident = true;
  lru_push_mru(slot);
  ++resident_count_;
  {
    util::MutexLock lock(stats_m_);
    ++counters_.misses;
    counters_.resident_bytes += slot_bytes_;
  }
  detail::check_arena(*this);
  return s.cl.data();
}

void ClvArena::pin(int slot) {
  checker_.check();
  PLF_CHECK(resident(slot), "clv arena: pin() on a non-resident slot");
  ++slots_[static_cast<std::size_t>(slot)].pin_count;
  detail::check_arena(*this);
}

void ClvArena::unpin(int slot) {
  checker_.check();
  PLF_CHECK(slot >= 0 && static_cast<std::size_t>(slot) < slots_.size(),
            "clv arena: slot id out of range");
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  PLF_CHECK(s.pin_count > 0, "clv arena: unpin() without a matching pin()");
  --s.pin_count;
  detail::check_arena(*this);
}

void ClvArena::release_eval_pins() {
  checker_.check();
  for (Slot& s : slots_) s.pin_count = 0;
  detail::check_arena(*this);
}

bool ClvArena::resident(int slot) const {
  checker_.check();
  PLF_CHECK(slot >= 0 && static_cast<std::size_t>(slot) < slots_.size(),
            "clv arena: slot id out of range");
  return slots_[static_cast<std::size_t>(slot)].resident;
}

bool ClvArena::pinned(int slot) const {
  checker_.check();
  PLF_CHECK(slot >= 0 && static_cast<std::size_t>(slot) < slots_.size(),
            "clv arena: slot id out of range");
  return slots_[static_cast<std::size_t>(slot)].pin_count > 0;
}

float* ClvArena::data(int slot) {
  checker_.check();
  PLF_CHECK(resident(slot),
            "clv arena: CLV slot was evicted; the engine must rematerialize "
            "it before use (raise --clv-budget if this recurs)");
  return slots_[static_cast<std::size_t>(slot)].cl.data();
}

const float* ClvArena::data(int slot) const {
  checker_.check();
  PLF_CHECK(resident(slot),
            "clv arena: CLV slot was evicted; the engine must rematerialize "
            "it before use (raise --clv-budget if this recurs)");
  return slots_[static_cast<std::size_t>(slot)].cl.data();
}

bool ClvArena::owns_resident(const float* p) const {
  checker_.check();
  if (p == nullptr) return false;
  for (const Slot& s : slots_) {
    if (s.resident && s.cl.data() == p) return true;
  }
  return false;
}

void ClvArena::note_recompute(std::uint64_t n) {
  util::MutexLock lock(stats_m_);
  counters_.recompute_ops += n;
}

ArenaCounters ClvArena::counters() const {
  util::MutexLock lock(stats_m_);
  return counters_;
}

std::size_t ClvArena::resident_bytes() const {
  util::MutexLock lock(stats_m_);
  return counters_.resident_bytes;
}

std::vector<int> ClvArena::lru_order_for_test() const {
  checker_.check();
  std::vector<int> order;
  for (int id = lru_head_; id != -1; id = slots_[static_cast<std::size_t>(id)].next) {
    order.push_back(id);
  }
  return order;
}

void ClvArena::evict_slot_for_test(int slot) {
  checker_.check();
  PLF_CHECK(resident(slot), "clv arena: evicting a non-resident slot");
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  PLF_DCHECK(s.pin_count == 0,
             "clv arena: eviction of a pinned slot; eviction order must "
             "respect pin state");
  lru_unlink(slot);
  s.cl = aligned_vector<float>();
  s.resident = false;
  --resident_count_;
  {
    util::MutexLock lock(stats_m_);
    ++counters_.evictions;
    counters_.resident_bytes -= slot_bytes_;
  }
  detail::check_arena(*this);
}

void ClvArena::evict_all() {
  checker_.check();
  for (std::size_t id = 0; id < slots_.size(); ++id) {
    Slot& s = slots_[id];
    if (!s.resident) continue;
    PLF_CHECK(s.pin_count == 0,
              "clv arena: evict_all() with a pinned slot - restore must not "
              "run mid-evaluation");
    lru_unlink(static_cast<int>(id));
    s.cl = aligned_vector<float>();
    s.resident = false;
    --resident_count_;
  }
  {
    util::MutexLock lock(stats_m_);
    counters_.resident_bytes = 0;
  }
  detail::check_arena(*this);
}

void ClvArena::validate() const {
  checker_.check();
  // Walk the LRU list forward: every listed slot resident, links symmetric.
  std::size_t listed = 0;
  int prev = -1;
  for (int id = lru_head_; id != -1;
       id = slots_[static_cast<std::size_t>(id)].next) {
    const Slot& s = slots_[static_cast<std::size_t>(id)];
    PLF_DCHECK(s.resident, "clv arena: LRU list contains an evicted slot");
    PLF_DCHECK(s.prev == prev, "clv arena: LRU back-link mismatch");
    PLF_DCHECK(!s.cl.empty() || slot_floats_ == 0,
               "clv arena: resident slot without storage");
    prev = id;
    ++listed;
    PLF_DCHECK(listed <= slots_.size(), "clv arena: LRU list cycle");
  }
  PLF_DCHECK(lru_tail_ == prev, "clv arena: LRU tail mismatch");
  PLF_DCHECK(listed == resident_count_,
             "clv arena: LRU list does not cover the resident set");
  std::size_t resident_seen = 0;
  for (const Slot& s : slots_) {
    if (s.resident) {
      ++resident_seen;
    } else {
      PLF_DCHECK(s.pin_count == 0, "clv arena: pinned slot was evicted");
      PLF_DCHECK(s.cl.empty(), "clv arena: evicted slot still holds storage");
    }
  }
  PLF_DCHECK(resident_seen == resident_count_,
             "clv arena: resident count drifted from slot flags");
  PLF_DCHECK(resident_count_ <= capacity_slots_,
             "clv arena: resident slots exceed the budgeted capacity");
}

void ClvArena::lru_unlink(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  if (s.prev != -1) {
    slots_[static_cast<std::size_t>(s.prev)].next = s.next;
  } else {
    lru_head_ = s.next;
  }
  if (s.next != -1) {
    slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
  } else {
    lru_tail_ = s.prev;
  }
  s.prev = -1;
  s.next = -1;
}

void ClvArena::lru_push_mru(int slot) {
  Slot& s = slots_[static_cast<std::size_t>(slot)];
  s.prev = lru_tail_;
  s.next = -1;
  if (lru_tail_ != -1) {
    slots_[static_cast<std::size_t>(lru_tail_)].next = slot;
  } else {
    lru_head_ = slot;
  }
  lru_tail_ = slot;
}

void ClvArena::evict_one() {
  // The victim is the least recently used slot whose pin count is zero:
  // eviction order respects pin state by construction, and the contract
  // below keeps it honest.
  int victim = lru_head_;
  while (victim != -1 &&
         slots_[static_cast<std::size_t>(victim)].pin_count > 0) {
    victim = slots_[static_cast<std::size_t>(victim)].next;
  }
  PLF_CHECK(victim != -1,
            "clv arena exhausted: every resident CLV slot is pinned by the "
            "current evaluation and nothing is evictable - raise --clv-budget");
  Slot& s = slots_[static_cast<std::size_t>(victim)];
  PLF_DCHECK(s.pin_count == 0, "clv arena: eviction picked a pinned slot");
  lru_unlink(victim);
  s.cl = aligned_vector<float>();
  s.resident = false;
  --resident_count_;
  {
    util::MutexLock lock(stats_m_);
    ++counters_.evictions;
    counters_.resident_bytes -= slot_bytes_;
  }
}

}  // namespace plf::core
