// Budgeted CLV arena: a slot allocator for conditional-likelihood vectors
// with a hard byte budget and LRU eviction.
//
// The PLF memory footprint — per-node CLVs of patterns x 4 x K floats, two
// buffers per internal node for the touch/flip proposal scheme — is the real
// scale ceiling of the method (§2 of the paper puts the working set, not the
// arithmetic, at the top of the cost model once patterns reach ~50K). BEAGLE
// treats CLV buffers as an explicitly managed, instance-scoped resource pool;
// this arena does the same for PlfEngine and adds recompute-instead-of-store:
// any evicted inner-node CLV is rebuildable from its children, and the
// engine's dependency-leveled plan machinery already knows how to schedule
// that rebuild (see docs/MEMORY.md for the cost model).
//
// Division of labour:
//   ClvArena   owns the float storage for every internal node's two CLV
//              buffers, keyed by a dense slot id. It decides *residency*
//              (allocate / evict / pin) and nothing else.
//   PlfEngine  decides *contents*: which slots to rebuild each evaluation
//              (collect_recompute_targets grows the dirty set with evicted
//              ancestors) and pins every slot an evaluation reads or writes
//              before any kernel runs, so no kernel ever sees an evicted
//              pointer (enforced by detail::check_arena in
//              kernel_contracts.hpp).
//
// Tip buffers (state masks and tip partials) and scaler rows are engine-owned
// and always resident — tips are inherently pinned outside the arena, and the
// full scaler re-summation must be able to read every internal node's active
// scaler row without triggering recompute.
//
// Threading: structural state (slots, LRU list, pins) is confined to the
// owning engine thread via ThreadChecker, exactly like PlfEngine itself.
// The usage counters are guarded by a util::Mutex so a metrics flusher on
// another thread can read counters() while the engine evaluates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::core {

/// CLV memory budget, as parsed from `--clv-budget=<bytes|frac>`.
///
/// The default (kUnlimited) preserves the historical behaviour: both buffers
/// of every internal node are preallocated eagerly and nothing is ever
/// evicted. A fraction is relative to that full pool; a byte count is
/// absolute. Either form is clamped UP to the minimum feasible budget — one
/// buffer per internal node — which is the worst-case pinned working set of a
/// single evaluation (every recompute target plus every external read is a
/// distinct internal node, so at most n_internal slots are pinned at once).
struct ClvBudget {
  enum class Kind : std::uint8_t { kUnlimited, kBytes, kFraction };

  Kind kind = Kind::kUnlimited;
  std::size_t bytes = 0;    ///< for kBytes
  double fraction = 1.0;    ///< for kFraction; in (0, 1]

  bool unlimited() const { return kind == Kind::kUnlimited; }

  /// Effective byte budget for a pool of `full_bytes` of CLV storage,
  /// clamped up to `min_bytes` (the minimum feasible working set).
  std::size_t resolve(std::size_t full_bytes, std::size_t min_bytes) const;
};

/// Parse "--clv-budget" values. Accepts a fraction of the full CLV pool
/// ("0.5", "1.0" — any value <= 1 or containing '.') or an absolute byte
/// count, optionally suffixed k/m/g ("1073741824", "512m", "2g").
/// Throws plf::Error on malformed or non-positive input.
ClvBudget clv_budget_from_string(const std::string& s);

std::string to_string(const ClvBudget& budget);

/// Usage counters; readable from any thread via ClvArena::counters().
struct ArenaCounters {
  std::uint64_t evictions = 0;       ///< slots whose storage was reclaimed
  std::uint64_t hits = 0;            ///< acquire() on an already-resident slot
  std::uint64_t misses = 0;          ///< acquire() that had to allocate
  std::uint64_t recompute_ops = 0;   ///< plan ops added only to rematerialize
  std::size_t resident_bytes = 0;    ///< currently allocated CLV bytes

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 1.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Fixed-capacity pool of CLV slots with LRU eviction and pin support.
///
/// A slot is `slot_floats` floats of aligned storage; PlfEngine maps
/// (internal node, buffer index) -> slot id. At most
/// `budget_bytes / slot_bytes` slots are resident at any instant: acquire()
/// evicts from the LRU end (skipping pinned slots) *before* allocating, so
/// resident_bytes never exceeds the budget even transiently.
///
/// The LRU list is intrusive (prev/next indices inside the slot records), so
/// the touch performed by every acquire() — one per plan op read or write —
/// is O(1).
class ClvArena {
 public:
  ClvArena() = default;
  ClvArena(const ClvArena&) = delete;
  ClvArena& operator=(const ClvArena&) = delete;

  /// Set up `n_slots` slots of `slot_floats` floats under `budget_bytes`.
  /// Callable once, before any other structural call.
  void init(std::size_t n_slots, std::size_t slot_floats,
            std::size_t budget_bytes);

  /// Make `slot` resident and move it to the MRU end, evicting LRU unpinned
  /// slots first if allocation would exceed the budget. Newly allocated
  /// storage is zero-filled. Returns the slot's storage. Throws plf::Error
  /// if nothing is evictable (every resident slot pinned at full budget).
  float* acquire(int slot);

  /// Pin `slot` (must be resident): it cannot be evicted until unpinned.
  /// Pins nest; the engine drops all of them with release_eval_pins() at the
  /// end of each evaluation.
  void pin(int slot);
  void unpin(int slot);
  void release_eval_pins();

  bool resident(int slot) const;
  bool pinned(int slot) const;

  /// Storage of a resident slot. PLF_CHECKs residency: an evicted slot has
  /// no storage and the caller must go through acquire()/the engine's
  /// recompute path instead.
  float* data(int slot);
  const float* data(int slot) const;

  /// True when `p` is the storage pointer of a currently resident slot.
  /// O(n_slots); used by the checked-build plan scan in check_arena.
  bool owns_resident(const float* p) const;

  /// Count plan ops that exist only to rematerialize evicted CLVs.
  void note_recompute(std::uint64_t n) PLF_EXCLUDES(stats_m_);

  std::size_t n_slots() const { return slots_.size(); }
  std::size_t slot_bytes() const { return slot_bytes_; }
  std::size_t budget_bytes() const { return budget_bytes_; }
  std::size_t capacity_slots() const { return capacity_slots_; }

  /// Thread-safe counter snapshot (for gauge publication / flusher threads).
  ArenaCounters counters() const PLF_EXCLUDES(stats_m_);
  std::size_t resident_bytes() const PLF_EXCLUDES(stats_m_);

  /// Deep structural check (LRU list doubly linked and complete, pin/resident
  /// flags consistent, resident accounting exact). O(n_slots); called from
  /// check_arena in checked builds. Aborts via PLF_DCHECK on violation.
  void validate() const;

  /// Release thread confinement so the arena (with its owning engine) can be
  /// handed to another thread; the next structural call rebinds. Part of
  /// PlfEngine::detach_thread() — see docs/SHARDING.md.
  void detach_thread() noexcept { checker_.detach(); }

  /// Evict every resident slot (checkpoint restore: stale pre-restore
  /// contents must not survive as "resident" next to restored buffers).
  /// PLF_CHECKs that nothing is pinned — restore never runs mid-evaluation.
  void evict_all();

  // --- test hooks -------------------------------------------------------
  /// Resident slots from LRU to MRU, for comparison against a reference
  /// eviction-state model.
  std::vector<int> lru_order_for_test() const;
  /// Force-evict a specific slot. PLF_DCHECKs that the slot is not pinned —
  /// eviction order must respect pin state even when forced.
  void evict_slot_for_test(int slot);

 private:
  struct Slot {
    aligned_vector<float> cl;
    int prev = -1;            ///< intrusive LRU links; valid while resident
    int next = -1;
    bool resident = false;
    int pin_count = 0;
  };

  void lru_unlink(int slot) PLF_REQUIRES(checker_);
  void lru_push_mru(int slot) PLF_REQUIRES(checker_);
  /// Reclaim the least recently used unpinned slot. Throws plf::Error with a
  /// "raise --clv-budget" message when every resident slot is pinned.
  void evict_one() PLF_REQUIRES(checker_);

  std::size_t slot_floats_ = 0;
  std::size_t slot_bytes_ = 0;
  std::size_t budget_bytes_ = 0;
  std::size_t capacity_slots_ = 0;

  std::vector<Slot> slots_ PLF_GUARDED_BY(checker_);
  int lru_head_ PLF_GUARDED_BY(checker_) = -1;  ///< least recently used
  int lru_tail_ PLF_GUARDED_BY(checker_) = -1;  ///< most recently used
  std::size_t resident_count_ PLF_GUARDED_BY(checker_) = 0;

  /// Single-owner confinement for the structural state, like PlfEngine.
  util::ThreadChecker checker_;

  mutable util::Mutex stats_m_;
  ArenaCounters counters_ PLF_GUARDED_BY(stats_m_);
};

}  // namespace plf::core
