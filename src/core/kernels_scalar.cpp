// Scalar reference implementation of the PLF kernels — the ground truth all
// SIMD/backend variants are validated against.
//
// Each kernel body lives in a per-site helper; the public entries map the
// iteration index through the optional site-repeat indirection and invoke the
// helper. The fused down+scale entries compose the SAME helpers per site, so
// fusion is bit-identical to the two-pass form by construction.
#include <cmath>

#include "core/kernel_contracts.hpp"
#include "core/kernels.hpp"

namespace plf::core {

namespace {

/// Evaluate one child's 4-state factor for pattern c, category k.
inline void child_values(const ChildArgs& ch, std::size_t c, std::size_t k,
                         std::size_t K, float out[4]) {
  if (ch.is_tip()) {
    const float* tp = ch.tp + static_cast<std::size_t>(ch.mask[c]) * K * 4 + k * 4;
    out[0] = tp[0];
    out[1] = tp[1];
    out[2] = tp[2];
    out[3] = tp[3];
  } else {
    const float* cl = ch.cl + c * K * 4 + k * 4;
    const float* p = ch.p + k * 16;
    for (std::size_t i = 0; i < 4; ++i) {
      out[i] = p[i * 4 + 0] * cl[0] + p[i * 4 + 1] * cl[1] +
               p[i * 4 + 2] * cl[2] + p[i * 4 + 3] * cl[3];
    }
  }
}

inline void down_site(std::size_t c, const DownArgs& a) {
  float* out = a.out + c * a.K * 4;
  for (std::size_t k = 0; k < a.K; ++k) {
    float l[4], r[4];
    child_values(a.left, c, k, a.K, l);
    child_values(a.right, c, k, a.K, r);
    for (std::size_t i = 0; i < 4; ++i) out[k * 4 + i] = l[i] * r[i];
  }
}

/// down_site with the child kinds known statically: left tip (table row),
/// right internal (matrix-vector product). Same float ops as down_site on
/// the same operands, minus the per-site branch.
inline void down_ti_site(std::size_t c, const DownArgs& a) {
  float* out = a.out + c * a.K * 4;
  const float* ltp =
      a.left.tp + static_cast<std::size_t>(a.left.mask[c]) * a.K * 4;
  const float* rcl = a.right.cl + c * a.K * 4;
  for (std::size_t k = 0; k < a.K; ++k) {
    const float* l = ltp + k * 4;
    const float* cl = rcl + k * 4;
    const float* p = a.right.p + k * 16;
    for (std::size_t i = 0; i < 4; ++i) {
      const float r = p[i * 4 + 0] * cl[0] + p[i * 4 + 1] * cl[1] +
                      p[i * 4 + 2] * cl[2] + p[i * 4 + 3] * cl[3];
      out[k * 4 + i] = l[i] * r;
    }
  }
}

inline void root_site(std::size_t c, const RootArgs& a) {
  const DownArgs& d = a.down;
  float* out = d.out + c * d.K * 4;
  const float* tp = a.out_tp + static_cast<std::size_t>(a.out_mask[c]) * d.K * 4;
  for (std::size_t k = 0; k < d.K; ++k) {
    float l[4], r[4];
    child_values(d.left, c, k, d.K, l);
    child_values(d.right, c, k, d.K, r);
    for (std::size_t i = 0; i < 4; ++i) {
      out[k * 4 + i] = l[i] * r[i] * tp[k * 4 + i];
    }
  }
}

inline void scale_site(std::size_t c, const ScaleArgs& a) {
  float* cl = a.cl + c * a.K * 4;
  float m = cl[0];
  for (std::size_t v = 1; v < a.K * 4; ++v) {
    if (cl[v] > m) m = cl[v];
  }
  if (m > 0.0f) {
    const float inv = 1.0f / m;
    for (std::size_t v = 0; v < a.K * 4; ++v) cl[v] *= inv;
    a.ln_scaler[c] = std::log(m);
  } else {
    // Fully underflowed site: leave values, record no scaling. The root
    // reduction will produce -inf for this site, which is the honest answer.
    a.ln_scaler[c] = 0.0f;
  }
}

void down_scalar(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/false);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_site(c, a);
  }
}

void down_ti_scalar(const DownArgs& a, std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, /*needs_transpose=*/false);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_ti_site(c, a);
  }
}

void root_scalar(const RootArgs& a, std::size_t begin, std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/false);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c =
        a.down.site_index != nullptr ? a.down.site_index[idx] : idx;
    root_site(c, a);
  }
}

void scale_scalar(const ScaleArgs& a, std::size_t begin, std::size_t end) {
  detail::check_scale(a, begin, end);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    scale_site(c, a);
  }
}

void down_scale_scalar(const DownArgs& a, const ScaleArgs& s, std::size_t begin,
                       std::size_t end) {
  detail::check_down(a, begin, end, /*needs_transpose=*/false);
  detail::check_fused_scale(s, a.out, a.K, a.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_site(c, a);
    scale_site(c, s);
  }
}

void down_ti_scale_scalar(const DownArgs& a, const ScaleArgs& s,
                          std::size_t begin, std::size_t end) {
  detail::check_down_ti(a, begin, end, /*needs_transpose=*/false);
  detail::check_fused_scale(s, a.out, a.K, a.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c = a.site_index != nullptr ? a.site_index[idx] : idx;
    down_ti_site(c, a);
    scale_site(c, s);
  }
}

void root_scale_scalar(const RootArgs& a, const ScaleArgs& s,
                       std::size_t begin, std::size_t end) {
  detail::check_root(a, begin, end, /*needs_transpose=*/false);
  detail::check_fused_scale(s, a.down.out, a.down.K, a.down.site_index);
  for (std::size_t idx = begin; idx < end; ++idx) {
    const std::size_t c =
        a.down.site_index != nullptr ? a.down.site_index[idx] : idx;
    root_site(c, a);
    scale_site(c, s);
  }
}

double root_reduce_scalar(const RootReduceArgs& a, std::size_t begin,
                          std::size_t end) {
  detail::check_root_reduce(a, begin, end);
  double partial = 0.0;
  const double inv_k = 1.0 / static_cast<double>(a.K);
  for (std::size_t c = begin; c < end; ++c) {
    const float* cl = a.cl + c * a.K * 4;
    double site = 0.0;
    for (std::size_t k = 0; k < a.K; ++k) {
      site += static_cast<double>(a.pi[0]) * cl[k * 4 + 0] +
              static_cast<double>(a.pi[1]) * cl[k * 4 + 1] +
              static_cast<double>(a.pi[2]) * cl[k * 4 + 2] +
              static_cast<double>(a.pi[3]) * cl[k * 4 + 3];
    }
    partial += static_cast<double>(a.weights[c]) *
               site_log_likelihood(site * inv_k, a.ln_scaler_total[c], a, c);
  }
  return partial;
}

}  // namespace

namespace detail {
extern const KernelSet kScalarKernels;
const KernelSet kScalarKernels{KernelVariant::kScalar,
                               down_scalar,
                               root_scalar,
                               scale_scalar,
                               root_reduce_scalar,
                               down_ti_scalar,
                               down_tip_tip,
                               down_scale_scalar,
                               down_ti_scale_scalar,
                               down_tip_tip_scale,
                               root_scale_scalar};
}  // namespace detail

}  // namespace plf::core
