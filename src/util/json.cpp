#include "util/json.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace plf::json {

Value Value::make_bool(bool b) {
  Value v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double d) {
  Value v;
  v.type_ = Type::kNumber;
  v.num_ = d;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array(Array a) {
  Value v;
  v.type_ = Type::kArray;
  v.arr_ = std::make_shared<const Array>(std::move(a));
  return v;
}

Value Value::make_object(Object o) {
  Value v;
  v.type_ = Type::kObject;
  v.obj_ = std::make_shared<const Object>(std::move(o));
  return v;
}

namespace {
[[noreturn]] void type_error(const char* want, Value::Type got) {
  static const char* const kNames[] = {"null",   "bool",  "number",
                                       "string", "array", "object"};
  throw Error(std::string("json: expected ") + want + ", value holds " +
              kNames[static_cast<unsigned char>(got)]);
}
}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Value::Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return *arr_;
}

const Value::Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return *obj_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : *obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw Error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

double Value::number_or(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

namespace {

/// Recursive-descent parser over a string_view. Depth-capped so hostile
/// nesting cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    skip_ws();
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json: " << what << " at " << line << ":" << col;
    throw ParseError(os.str());
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char next() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      fail("invalid literal");
    }
    pos_ += lit.size();
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value::make_string(parse_string());
      case 't': expect_literal("true"); return Value::make_bool(true);
      case 'f': expect_literal("false"); return Value::make_bool(false);
      case 'n': expect_literal("null"); return Value::make_null();
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    next();  // '{'
    Value::Object members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      skip_ws();
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array(int depth) {
    next();  // '['
    Value::Array items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return Value::make_array(std::move(items));
  }

  std::string parse_string() {
    next();  // '"'
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail("invalid escape sequence");
      }
    }
    return out;
  }

  std::string parse_unicode_escape() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      cp <<= 4;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    // Minimal UTF-8 encode of the BMP code point. Surrogate pairs are not
    // combined (our emitters never produce them); each half encodes
    // independently, which is lossy but non-throwing.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    auto digits = [this] {
      bool any = false;
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
        any = true;
      }
      return any;
    };
    if (!digits()) fail("invalid number");
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) fail("invalid number: missing fraction digits");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) fail("invalid number: missing exponent digits");
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("invalid number");
    // Overflow to +/-inf is accepted (errno == ERANGE); callers treating
    // seconds/counters never hit it in practice.
    return Value::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("json: cannot open file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    throw Error("json: read failure on '" + path + "'");
  }
  try {
    return parse(buf.str());
  } catch (const ParseError& e) {
    // Re-throw with the file name appended, dropping the prefix the
    // ParseError constructor will re-add.
    std::string what = e.what();
    constexpr std::string_view kPrefix = "parse error: ";
    if (what.rfind(kPrefix, 0) == 0) what.erase(0, kPrefix.size());
    throw ParseError(what + " [file " + path + "]");
  }
}

}  // namespace plf::json
