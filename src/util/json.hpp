// Minimal JSON reader for the tools that consume our own emitted documents
// (bench reports, metrics dumps, flight recordings).
//
// Scope is deliberately tight: parse a complete UTF-8 text into an immutable
// Value tree, throw plf::ParseError with position info on malformed input.
// No streaming, no comments, no writer (emission lives next to each producer
// — obs/json_util.hpp). Numbers are stored as double, which is exact for the
// counts and seconds our schemas carry.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace plf::json {

/// One JSON value. Object member order is preserved (useful for stable
/// round-trip tests); lookup by key is linear, fine for our small documents.
class Value {
 public:
  enum class Type : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() = default;
  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double d);
  static Value make_string(std::string s);
  static Value make_array(Array a);
  static Value make_object(Object o);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw plf::Error when the value holds another type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// find() that throws plf::Error when the key is missing.
  const Value& at(std::string_view key) const;

  /// Convenience: number at `key`, or `fallback` when absent/not a number.
  double number_or(std::string_view key, double fallback) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  // Indirect so Value stays movable with an incomplete element type.
  std::shared_ptr<const Array> arr_;
  std::shared_ptr<const Object> obj_;
};

/// Parse a complete JSON document. Trailing whitespace is permitted, any
/// other trailing content is an error. Throws plf::ParseError with a
/// line:column position on malformed input.
Value parse(std::string_view text);

/// Read and parse a whole file; throws plf::Error when unreadable.
Value parse_file(const std::string& path);

}  // namespace plf::json
