#include "util/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace plf {

bool contracts_active() noexcept { return PLF_CONTRACTS_LEVEL != 0; }

}  // namespace plf

namespace plf::detail {

namespace {
std::atomic<CrashHookFn> g_crash_hook{nullptr};
}  // namespace

CrashHookFn set_contract_crash_hook(CrashHookFn fn) noexcept {
  return g_crash_hook.exchange(fn, std::memory_order_acq_rel);
}

void invoke_contract_crash_hook() noexcept {
  if (const CrashHookFn fn = g_crash_hook.load(std::memory_order_acquire);
      fn != nullptr) {
    fn();
  }
}

void throw_hw_check_failure(const char* expr, const char* file, int line,
                            const std::string& msg) {
  std::ostringstream os;
  os << msg << " [check `" << expr << "` failed at " << file << ":" << line
     << "]";
  throw HardwareViolation(os.str());
}

void throw_alignment_failure(const void* ptr, std::size_t align,
                             const char* expr, const char* file, int line) {
  std::ostringstream os;
  os << "pointer `" << expr << "` = " << ptr << " is not " << align
     << "-byte aligned [at " << file << ":" << line << "]";
  throw HardwareViolation(os.str());
}

void contract_abort(const char* kind, const char* expr, const char* file,
                    int line, const char* msg) noexcept {
  std::fprintf(stderr, "plf: contract violation: %s [%s `%s` failed at %s:%d]\n",
               msg, kind, expr, file, line);
  std::fflush(stderr);
  invoke_contract_crash_hook();
  std::abort();
}

void contract_abort_aligned(const void* ptr, std::size_t align,
                            const char* expr, const char* file,
                            int line) noexcept {
  std::fprintf(stderr,
               "plf: contract violation: pointer `%s` = %p is not %zu-byte "
               "aligned [at %s:%d]\n",
               expr, ptr, align, file, line);
  std::fflush(stderr);
  invoke_contract_crash_hook();
  std::abort();
}

}  // namespace plf::detail
