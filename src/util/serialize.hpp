// Versioned binary serialization for checkpoint/restore (docs/SHARDING.md).
//
// Chain checkpoints carry a 0-ULP resume guarantee: a restored run must
// produce bit-identical likelihoods to the uninterrupted one. That rules out
// any text round-trip (decimal formatting is lossy) and any "recompute it on
// load" shortcut for accumulated floating-point state, so every writer in the
// project goes through this one pair of classes (enforced by the plf_lint
// `checkpoint-serializer` rule):
//
//   - integers and IEEE-754 doubles/floats are written as their exact
//     little-endian bit patterns (memcpy through uint64/uint32 — never a
//     value-changing conversion);
//   - every section starts with a 32-bit tag so a reader that drifts out of
//     sync fails loudly instead of reinterpreting garbage;
//   - the stream starts with a magic number plus a format version, checked on
//     open, so an old binary refuses a new checkpoint (and vice versa) with a
//     real error message instead of undefined behavior.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace plf::util {

/// Stream magic: "PLFCKPT\0" as a little-endian u64.
inline constexpr std::uint64_t kCheckpointMagic = 0x00545048'43464C50ull;

/// Format version of the whole checkpoint container. Bump on ANY layout
/// change and document the delta in docs/SHARDING.md.
///   v2: MC3C gained a trailing "TDIA" section (streaming-ESS accumulator +
///       per-pair swap tallies) so live telemetry resumes bit-consistently.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Writes length-prefixed, tag-framed little-endian binary. All `u64`/`f64`
/// writes are exact bit copies; the header (magic + version) is written by
/// the constructor.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& os);

  /// Open a tagged section. Tags are 4-char codes ("TREE", "RNGS", ...);
  /// readers must consume sections in the same order.
  void section(const char (&tag)[5]);

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Exact IEEE-754 bit pattern, never a formatted value.
  void f64(double v);
  void f32(float v);
  void str(const std::string& s);

  void f32_array(const float* data, std::size_t n);
  void f64_array(const double* data, std::size_t n);
  void u64_array(const std::uint64_t* data, std::size_t n);

 private:
  void raw(const void* data, std::size_t n);
  std::ostream& os_;
};

/// Mirror of BinaryWriter. Construction validates magic + version and throws
/// plf::Error on mismatch; every accessor throws on truncated input, and
/// `section` throws if the next tag is not the expected one.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is);

  void section(const char (&tag)[5]);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  float f32();
  std::string str();

  std::vector<float> f32_array();
  std::vector<double> f64_array();
  std::vector<std::uint64_t> u64_array();

  /// Container format version read from the header.
  std::uint32_t version() const { return version_; }

 private:
  void raw(void* data, std::size_t n);
  std::istream& is_;
  std::uint32_t version_ = 0;
};

}  // namespace plf::util
