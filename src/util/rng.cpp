#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace plf {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A state of all zeros is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero outputs in a row, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  have_spare_normal_ = false;
}

std::uint64_t Rng::below(std::uint64_t n) {
  PLF_CHECK(n > 0, "Rng::below requires n > 0");
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    const std::uint64_t r = operator()();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::exponential(double lambda) {
  PLF_CHECK(lambda > 0.0, "exponential rate must be positive");
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / lambda;
}

double Rng::gamma(double shape, double scale) {
  PLF_CHECK(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
  if (shape < 1.0) {
    // Boost the shape above 1 and correct with the standard power trick.
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
  }
}

std::vector<double> Rng::dirichlet(const std::vector<double>& alpha) {
  PLF_CHECK(!alpha.empty(), "dirichlet needs at least one parameter");
  std::vector<double> out(alpha.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = gamma(alpha[i], 1.0);
    sum += out[i];
  }
  for (auto& v : out) v /= sum;
  return out;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  PLF_CHECK(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    PLF_CHECK(w >= 0.0, "categorical weights must be nonnegative");
    total += w;
  }
  PLF_CHECK(total > 0.0, "categorical weights must not all be zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

void Rng::jump() {
  static constexpr std::uint64_t kJump[] = {0x180EC6D33CFD0ABAull,
                                            0xD5A61266F0C9392Cull,
                                            0xA9582618E03FC9AAull,
                                            0x39ABDC4529B1661Cull};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (int i = 0; i < 4; ++i) t[i] ^= s_[i];
      }
      operator()();
    }
  }
  s_ = t;
}

}  // namespace plf
