#include "util/serialize.hpp"

#include <cstring>
#include <istream>
#include <ostream>

#include "util/error.hpp"

namespace plf::util {

namespace {

std::uint32_t tag_code(const char (&tag)[5]) {
  std::uint32_t code = 0;
  std::memcpy(&code, tag, 4);
  return code;
}

std::string tag_name(std::uint32_t code) {
  char buf[5] = {};
  std::memcpy(buf, &code, 4);
  return std::string(buf, 4);
}

}  // namespace

// --- writer ---

BinaryWriter::BinaryWriter(std::ostream& os) : os_(os) {
  u64(kCheckpointMagic);
  u32(kCheckpointVersion);
}

void BinaryWriter::raw(const void* data, std::size_t n) {
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!os_) throw Error("checkpoint write failed (stream error)");
}

void BinaryWriter::section(const char (&tag)[5]) { u32(tag_code(tag)); }

void BinaryWriter::u8(std::uint8_t v) { raw(&v, sizeof v); }
void BinaryWriter::u32(std::uint32_t v) { raw(&v, sizeof v); }
void BinaryWriter::u64(std::uint64_t v) { raw(&v, sizeof v); }
void BinaryWriter::i64(std::int64_t v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}
void BinaryWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}
void BinaryWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  u32(bits);
}
void BinaryWriter::str(const std::string& s) {
  u64(s.size());
  if (!s.empty()) raw(s.data(), s.size());
}

void BinaryWriter::f32_array(const float* data, std::size_t n) {
  u64(n);
  if (n != 0) raw(data, n * sizeof(float));
}
void BinaryWriter::f64_array(const double* data, std::size_t n) {
  u64(n);
  if (n != 0) raw(data, n * sizeof(double));
}
void BinaryWriter::u64_array(const std::uint64_t* data, std::size_t n) {
  u64(n);
  if (n != 0) raw(data, n * sizeof(std::uint64_t));
}

// --- reader ---

BinaryReader::BinaryReader(std::istream& is) : is_(is) {
  const std::uint64_t magic = u64();
  if (magic != kCheckpointMagic) {
    throw Error("checkpoint: bad magic (not a plf checkpoint file)");
  }
  version_ = u32();
  if (version_ != kCheckpointVersion) {
    throw Error("checkpoint: format version " + std::to_string(version_) +
                " unsupported (this build reads version " +
                std::to_string(kCheckpointVersion) + ")");
  }
}

void BinaryReader::raw(void* data, std::size_t n) {
  is_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(is_.gcount()) != n) {
    throw Error("checkpoint: truncated stream");
  }
}

void BinaryReader::section(const char (&tag)[5]) {
  const std::uint32_t expect = tag_code(tag);
  const std::uint32_t got = u32();
  if (got != expect) {
    throw Error("checkpoint: expected section '" + tag_name(expect) +
                "', found '" + tag_name(got) + "' (corrupt or out-of-order)");
  }
}

std::uint8_t BinaryReader::u8() {
  std::uint8_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::uint32_t BinaryReader::u32() {
  std::uint32_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::uint64_t BinaryReader::u64() {
  std::uint64_t v = 0;
  raw(&v, sizeof v);
  return v;
}
std::int64_t BinaryReader::i64() {
  const std::uint64_t bits = u64();
  std::int64_t v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}
double BinaryReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}
float BinaryReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}
std::string BinaryReader::str() {
  const std::uint64_t n = u64();
  std::string s(n, '\0');
  if (n != 0) raw(s.data(), n);
  return s;
}

std::vector<float> BinaryReader::f32_array() {
  const std::uint64_t n = u64();
  std::vector<float> v(n);
  if (n != 0) raw(v.data(), n * sizeof(float));
  return v;
}
std::vector<double> BinaryReader::f64_array() {
  const std::uint64_t n = u64();
  std::vector<double> v(n);
  if (n != 0) raw(v.data(), n * sizeof(double));
  return v;
}
std::vector<std::uint64_t> BinaryReader::u64_array() {
  const std::uint64_t n = u64();
  std::vector<std::uint64_t> v(n);
  if (n != 0) raw(v.data(), n * sizeof(std::uint64_t));
  return v;
}

}  // namespace plf::util
