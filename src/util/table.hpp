// Plain-text table formatting for benchmark harness output.
//
// Every figure/table bench prints its series through this so that the rows
// the paper reports can be compared side by side (and grepped / re-plotted).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace plf {

/// A simple column-aligned text table with an optional title.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row. Column count is fixed by this call.
  Table& header(std::vector<std::string> cells);

  /// Append a data row (must match the header width if one was set).
  Table& row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 2);

  /// Render to a stream with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace plf
