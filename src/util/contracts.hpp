// Contract / invariant-check macros for the PLF kernels and simulators.
//
// Two severity tiers, matching how the code is exercised:
//
//   PLF_CHECK(expr, msg)          always on; throws plf::Error. For API misuse
//                                 on cold paths (parse, setup, region entry).
//                                 Defined in util/error.hpp; re-exported here.
//   PLF_CHECK_HW(expr, msg)       always on; throws plf::HardwareViolation.
//                                 For simulated hardware rules (DMA size,
//                                 LS capacity, device-memory bounds) so tests
//                                 can assert on the exact violation class.
//   PLF_CHECK_ALIGNED(ptr, n)     always on; throws plf::HardwareViolation
//                                 with the offending pointer value. For the
//                                 16/128-byte DMA and SIMD alignment rules.
//
//   PLF_DCHECK(expr, msg)         checked builds only; prints a diagnostic to
//                                 stderr and aborts (death-testable, safe in
//                                 noexcept and hot paths). Compiles to nothing
//                                 in release builds: the condition is not
//                                 evaluated, only type-checked.
//   PLF_DCHECK_ALIGNED(ptr, n)    checked-build alignment variant of above.
//   PLF_ASSUME(expr)              checked builds: fatal check. Release builds:
//                                 optimizer hint (__builtin_unreachable on the
//                                 false branch) — `expr` must be side-effect
//                                 free.
//
// "Checked build" means any of: NDEBUG not defined (Debug builds), a
// sanitizer preset (the build system defines PLF_CONTRACTS_CHECKED for every
// PLF_SANITIZE mode), or a per-target -DPLF_CONTRACTS_CHECKED=1 (used by the
// contract death tests to stay active under RelWithDebInfo).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/error.hpp"

#if !defined(PLF_CONTRACTS_LEVEL)
#if defined(PLF_CONTRACTS_CHECKED) || !defined(NDEBUG)
#define PLF_CONTRACTS_LEVEL 1
#else
#define PLF_CONTRACTS_LEVEL 0
#endif
#endif

namespace plf {

/// True when the plf libraries themselves were compiled with checked
/// contracts (Debug, a sanitizer preset, or -DPLF_CONTRACTS=ON). Lets tests
/// that provoke PLF_DCHECK failures inside library code skip cleanly when
/// the library build compiled those checks out.
bool contracts_active() noexcept;

}  // namespace plf

namespace plf::detail {

/// Hook invoked (at most one is installed) just before a fatal contract
/// violation aborts the process. The observability layer registers the
/// flight-recorder dump here (obs/flight.hpp), so a PLF_DCHECK death in a
/// sanitizer CI job leaves the failing thread's last spans behind instead of
/// a bare abort. Must be async-signal-tolerant in spirit: no throwing, no
/// re-entering the contract layer.
using CrashHookFn = void (*)() noexcept;

/// Install `fn` (nullptr to clear); returns the previously installed hook.
CrashHookFn set_contract_crash_hook(CrashHookFn fn) noexcept;

/// Run the installed hook, if any. Called by contract_abort* before abort().
void invoke_contract_crash_hook() noexcept;

/// Throws HardwareViolation (always-on hardware-rule checks).
[[noreturn]] void throw_hw_check_failure(const char* expr, const char* file,
                                         int line, const std::string& msg);

/// Throws HardwareViolation with the pointer value in the message.
[[noreturn]] void throw_alignment_failure(const void* ptr, std::size_t align,
                                          const char* expr, const char* file,
                                          int line);

/// Prints "plf: contract violation ..." to stderr and aborts. Used by the
/// checked-build-only macros so they work inside noexcept code and under
/// gtest death tests.
[[noreturn]] void contract_abort(const char* kind, const char* expr,
                                 const char* file, int line,
                                 const char* msg) noexcept;

/// contract_abort carrying a misaligned pointer value.
[[noreturn]] void contract_abort_aligned(const void* ptr, std::size_t align,
                                         const char* expr, const char* file,
                                         int line) noexcept;

inline bool contract_is_aligned(const void* p, std::size_t align) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

}  // namespace plf::detail

/// Always-on simulated-hardware invariant; throws plf::HardwareViolation.
#define PLF_CHECK_HW(expr, msg)                                                \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::plf::detail::throw_hw_check_failure(#expr, __FILE__, __LINE__, msg);   \
    }                                                                          \
  } while (false)

/// Always-on pointer alignment invariant; throws plf::HardwareViolation.
#define PLF_CHECK_ALIGNED(ptr, n)                                              \
  do {                                                                         \
    if (!::plf::detail::contract_is_aligned((ptr), (n))) {                     \
      ::plf::detail::throw_alignment_failure((ptr), (n), #ptr, __FILE__,       \
                                             __LINE__);                        \
    }                                                                          \
  } while (false)

#if PLF_CONTRACTS_LEVEL

#define PLF_DCHECK(expr, msg)                                                  \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::plf::detail::contract_abort("dcheck", #expr, __FILE__, __LINE__, msg); \
    }                                                                          \
  } while (false)

#define PLF_DCHECK_ALIGNED(ptr, n)                                             \
  do {                                                                         \
    if (!::plf::detail::contract_is_aligned((ptr), (n))) {                     \
      ::plf::detail::contract_abort_aligned((ptr), (n), #ptr, __FILE__,        \
                                            __LINE__);                         \
    }                                                                          \
  } while (false)

#define PLF_ASSUME(expr)                                                       \
  do {                                                                         \
    if (!(expr)) {                                                             \
      ::plf::detail::contract_abort("assumption", #expr, __FILE__, __LINE__,   \
                                    "assumed condition is false");             \
    }                                                                          \
  } while (false)

#else  // release: DCHECKs vanish (unevaluated), ASSUME feeds the optimizer.

#define PLF_DCHECK(expr, msg) \
  do {                        \
    (void)sizeof(!(expr));    \
  } while (false)

#define PLF_DCHECK_ALIGNED(ptr, n) \
  do {                             \
    (void)sizeof(ptr);             \
    (void)sizeof(n);               \
  } while (false)

#if defined(__clang__)
#define PLF_ASSUME(expr) __builtin_assume(expr)
#elif defined(__GNUC__)
#define PLF_ASSUME(expr)                    \
  do {                                      \
    if (!(expr)) __builtin_unreachable();   \
  } while (false)
#else
#define PLF_ASSUME(expr) \
  do {                   \
    (void)sizeof(!(expr)); \
  } while (false)
#endif

#endif  // PLF_CONTRACTS_LEVEL
