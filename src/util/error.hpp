// Error handling primitives shared by every plf module.
//
// We use exceptions for unrecoverable API misuse (per C++ Core Guidelines
// E.2/E.3): simulator invariant violations (a DMA transfer that breaks the
// Cell/BE alignment rules, a local-store overflow) throw `plf::Error` so that
// tests can assert on them, while hot kernel paths stay assertion-free.
#pragma once

#include <stdexcept>
#include <string>

namespace plf {

/// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an input file / text blob cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Thrown when a simulated hardware constraint is violated
/// (DMA size/alignment, local-store capacity, mailbox misuse, ...).
class HardwareViolation : public Error {
 public:
  explicit HardwareViolation(const std::string& what)
      : Error("hardware constraint violated: " + what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace plf

/// Always-on invariant check (unlike assert, active in release builds).
/// Usage: PLF_CHECK(size % 16 == 0, "DMA size must be 16-byte aligned");
#define PLF_CHECK(expr, msg)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::plf::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)
