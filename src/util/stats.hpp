// Small online statistics helper used by benchmarks and the calibration code.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace plf {

/// Welford online mean/variance accumulator with min/max tracking.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace plf
