// Small online statistics helper used by benchmarks and the calibration code.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace plf {

/// Welford online mean/variance accumulator with min/max tracking.
class OnlineStats {
 public:
  /// The accumulator's exact internal state, exposed for checkpointing
  /// (docs/SHARDING.md): resume must reproduce the *accumulated*
  /// floating-point state bit-for-bit, which recomputing from samples could
  /// not. min/max keep their ±infinity "no samples yet" sentinels here —
  /// state() is the raw representation, not the NaN-reporting accessors.
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  State state() const { return State{n_, mean_, m2_, min_, max_}; }
  void set_state(const State& s) {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Fold another accumulator in (Chan et al. parallel combination). Used by
  /// the metrics registry to merge per-thread timer shards on flush.
  void merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const std::size_t n = n_ + other.n_;
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) /
                           static_cast<double>(n);
    mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = n;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }

  /// Smallest/largest sample seen. With no samples there is no extremum:
  /// both return quiet NaN (never the internal ±infinity sentinels), so
  /// metric reports can detect and label the empty state instead of
  /// printing "inf".
  double min() const {
    return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
  }
  double max() const {
    return n_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
  }

  /// Sum of all samples (mean * count; exact enough for time accounting).
  double total() const { return mean_ * static_cast<double>(n_); }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace plf
