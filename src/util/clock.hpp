// Real and simulated time sources.
//
// Real kernels are timed with `Stopwatch`. The Cell/BE and GPU simulators
// charge costs to a `VirtualClock` measured in seconds of simulated time;
// parallel resources (SPEs, SMs, the DMA engine) each carry their own
// timeline and are merged with max/plus semantics by the simulators.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>

namespace plf {

/// Nanosecond timestamp function the observability layer samples. The
/// default reads the monotonic steady clock; tests inject a deterministic
/// source so timer math is exactly reproducible.
using NowNsFn = std::uint64_t (*)();

namespace detail {
inline std::atomic<NowNsFn> g_now_ns_source{nullptr};
}  // namespace detail

/// Monotonic nanoseconds (or the injected source's value).
inline std::uint64_t now_ns() {
  if (const NowNsFn fn = detail::g_now_ns_source.load(std::memory_order_acquire);
      fn != nullptr) {
    return fn();
  }
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Install a fake time source for now_ns(); nullptr restores the steady
/// clock. Returns the previously installed source. Not meant to be swapped
/// while timers are running — tests install it up front.
inline NowNsFn set_now_ns_source(NowNsFn fn) {
  return detail::g_now_ns_source.exchange(fn, std::memory_order_acq_rel);
}

/// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch() : start_(now()) {}

  void reset() { start_ = now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  static clock::time_point now() { return clock::now(); }
  clock::time_point start_;
};

/// A simulated timeline. Time only moves forward.
class VirtualClock {
 public:
  /// Current simulated time in seconds.
  double now() const { return t_; }

  /// Advance by `dt` seconds (dt >= 0).
  void advance(double dt) { t_ += dt; }

  /// Move to at least `t` (used when synchronizing timelines: a consumer
  /// cannot observe an event before it was produced).
  void advance_to(double t) { t_ = std::max(t_, t); }

  void reset() { t_ = 0.0; }

 private:
  double t_ = 0.0;
};

}  // namespace plf
