// Deterministic random number generation.
//
// The paper fixes MrBayes' random seeds "to ensure a fair comparison of the
// results" (§4); everything here is exactly reproducible across runs and
// platforms. We implement xoshiro256** (public-domain algorithm by Blackman &
// Vigna) instead of std::mt19937 because its stream is specified bit-exactly
// and it is significantly faster, and we implement our own distributions
// because libstdc++'s are not guaranteed to be stable across versions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace plf {

/// xoshiro256** PRNG with splitmix64 seeding. Satisfies
/// UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

  /// Standard normal variate (Marsaglia polar method).
  double normal();

  /// Exponential variate with rate `lambda`.
  double exponential(double lambda);

  /// Gamma(shape, scale) variate (Marsaglia-Tsang squeeze method).
  double gamma(double shape, double scale);

  /// Dirichlet sample with the given concentration parameters.
  std::vector<double> dirichlet(const std::vector<double>& alpha);

  /// Sample an index according to (unnormalized, nonnegative) weights.
  std::size_t categorical(const std::vector<double>& weights);

  /// Jump function: advances the state by 2^128 steps, for independent
  /// parallel streams.
  void jump();

  /// Complete generator state, for checkpoint/restore. The spare-normal
  /// cache is part of the stream: dropping it would shift every draw after
  /// the next normal() by one, breaking bit-exact resume.
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool have_spare_normal = false;
    double spare_normal = 0.0;
  };
  State state() const { return State{s_, have_spare_normal_, spare_normal_}; }
  void set_state(const State& st) {
    s_ = st.s;
    have_spare_normal_ = st.have_spare_normal;
    spare_normal_ = st.spare_normal;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace plf
