// Aligned allocation helpers.
//
// All likelihood vectors are kept 64-byte aligned so that (a) AVX2 loads can
// use aligned moves and (b) the simulated Cell/BE DMA engine — which requires
// 128-byte aligned transfers exactly like the real hardware — can operate on
// them directly. 128 is used as the default to satisfy the strictest
// consumer (the Cell DMA rules from the paper, §3.3).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace plf {

inline constexpr std::size_t kCacheLineBytes = 64;
/// Cell/BE DMA transfers of likelihood arrays are aligned to 128 bytes (§3.3).
inline constexpr std::size_t kDmaAlignBytes = 128;

/// Minimal C++17-style aligned allocator usable with std::vector.
template <typename T, std::size_t Align = kDmaAlignBytes>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::size_t alignment = Align;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    const std::size_t bytes = round_up(n * sizeof(T), Align);
    void* p = std::aligned_alloc(Align, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }

 private:
  static constexpr std::size_t round_up(std::size_t v, std::size_t a) {
    return (v + a - 1) / a * a;
  }
};

/// Vector whose storage is aligned for SIMD and simulated-DMA use.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` is aligned to `align` bytes.
inline bool is_aligned(const void* p, std::size_t align) {
  return reinterpret_cast<std::uintptr_t>(p) % align == 0;
}

/// Round `v` up to the next multiple of `a` (a must be nonzero).
constexpr std::size_t round_up(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

}  // namespace plf
