// TSA-aware synchronization primitives.
//
// libstdc++'s std::mutex carries no Clang Thread Safety attributes, so
// PLF_GUARDED_BY(std_mutex_member) trips -Wthread-safety-attributes ("not a
// capability"). These thin wrappers attach the attributes (the same approach
// as absl::Mutex and Chromium's base::Lock) without changing the underlying
// primitive:
//
//   Mutex         std::mutex + PLF_CAPABILITY; lock/unlock/try_lock annotated.
//   MutexLock     scoped lock_guard replacement (PLF_SCOPED_CAPABILITY).
//   CondVar       std::condition_variable_any over Mutex; wait() declares
//                 PLF_REQUIRES(m) so waiting without the lock is a build break.
//   ThreadChecker a *thread-confinement* capability for the single-owner
//                 simulators (cell/mailbox, cell/dma, gpu/device_memory) and
//                 PlfEngine: members carry PLF_GUARDED_BY(checker_), every
//                 entry point calls checker_.check(), and TSA proves no
//                 confined state is touched on a path that skipped the check.
//                 At run time (checked builds) check() binds the first calling
//                 thread and aborts if any other thread ever calls in — the
//                 compile-time proof and the runtime tripwire come from one
//                 annotation. Release builds: check() is empty.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/contracts.hpp"
#include "util/thread_annotations.hpp"

namespace plf::util {

class PLF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PLF_ACQUIRE() { m_.lock(); }
  void unlock() PLF_RELEASE() { m_.unlock(); }
  bool try_lock() PLF_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock for Mutex; drop-in for std::lock_guard at the call sites.
class PLF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) PLF_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() PLF_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

/// Condition variable usable with Mutex (which is a BasicLockable).
/// wait() requires the mutex held; the predicate runs under the lock each
/// time the wait loop re-checks, but TSA analyzes the lambda as a separate
/// function with no capability context — predicates therefore carry
/// PLF_NO_TSA with a comment at each wait site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  template <class Predicate>
  void wait(Mutex& m, Predicate pred) PLF_REQUIRES(m) {
    cv_.wait(m, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

/// Thread-confinement capability (see file comment). Copying yields a fresh,
/// unbound checker: a copied/moved object is a new confinement domain, and
/// std::atomic members would otherwise delete the copy operations the
/// containing value types rely on.
class PLF_CAPABILITY("thread role") ThreadChecker {
 public:
  ThreadChecker() = default;
  ThreadChecker(const ThreadChecker&) noexcept {}
  ThreadChecker& operator=(const ThreadChecker&) noexcept { return *this; }

  /// Asserts this code runs on the owning thread. The first call from any
  /// thread binds ownership (objects may be built on one thread and handed
  /// off before use). Checked builds abort on a violation; release builds
  /// compile to nothing but keep the TSA assertion.
  void check() const PLF_ASSERT_CAPABILITY(this) {
#if PLF_CONTRACTS_LEVEL
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id owner = owner_.load(std::memory_order_acquire);
    if (owner == std::thread::id{}) {
      if (owner_.compare_exchange_strong(owner, self,
                                         std::memory_order_acq_rel)) {
        return;
      }
      // Lost the race: `owner` now holds the winner; fall through to compare.
    }
    PLF_DCHECK(owner == self || owner == std::thread::id{},
               "thread-confined object touched from a second thread "
               "(see docs/STATIC_ANALYSIS.md: ThreadChecker)");
#endif
  }

  /// Release ownership so the next check() rebinds: for explicit serial
  /// handoff of a confined object to another thread.
  void detach() noexcept {
#if PLF_CONTRACTS_LEVEL
    owner_.store(std::thread::id{}, std::memory_order_release);
#endif
  }

 private:
#if PLF_CONTRACTS_LEVEL
  mutable std::atomic<std::thread::id> owner_{};
#endif
};

}  // namespace plf::util
