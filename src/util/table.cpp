#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace plf {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  if (!header_.empty()) {
    PLF_CHECK(cells.size() == header_.size(),
              "table row width does not match header");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << cells[i];
      if (i + 1 < cells.size()) os << "  ";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w;
    os << std::string(total + 2 * (widths.empty() ? 0 : widths.size() - 1), '-')
       << '\n';
  }
  for (const auto& r : rows_) emit(r);
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace plf
