// Clang Thread Safety Analysis macros (compile-time lock-discipline proofs).
//
// These wrap the attributes documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so the concurrency
// surface (par/thread_pool, obs/metrics, obs/flight, the thread-confined
// cell/gpu simulators) can state its locking protocol in the type system:
// which mutex guards which member, which functions require/acquire/release
// which capability. Under the `tsa` CMake preset (clang,
// -Wthread-safety -Wthread-safety-beta, warnings as errors) every violation
// of a stated protocol is a build break; everywhere else — gcc, or clang
// without the flag — the macros compile to nothing and cost nothing.
//
// Conventions in this codebase:
//   - every mutex-protected member carries PLF_GUARDED_BY(<mutex>);
//   - private helpers that assume a held lock carry PLF_REQUIRES(<mutex>)
//     instead of re-locking;
//   - lock-free protocols TSA cannot model (the flight-recorder seqlock
//     rings, the spin barrier's sense-reversal) are NOT annotated: each
//     carries a comment explaining the protocol and why it is exempt, and
//     any function that would trip the analysis anyway uses PLF_NO_TSA;
//   - thread-confined (single-owner, unsynchronized) classes use
//     util::ThreadChecker from util/sync.hpp as a capability, so confinement
//     violations are caught by TSA at compile time and by PLF_DCHECK at run
//     time. See docs/STATIC_ANALYSIS.md.
#pragma once

#if defined(__clang__)
#define PLF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PLF_THREAD_ANNOTATION(x)  // no-op off Clang (gcc ignores TSA)
#endif

/// Class attribute: instances are capabilities (lockable things / roles).
#define PLF_CAPABILITY(name) PLF_THREAD_ANNOTATION(capability(name))

/// Class attribute: RAII type whose ctor acquires and dtor releases.
#define PLF_SCOPED_CAPABILITY PLF_THREAD_ANNOTATION(scoped_lockable)

/// Data member is only read/written while holding the given capability.
#define PLF_GUARDED_BY(x) PLF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the pointed-to data is protected by the capability
/// (the pointer itself may be read freely).
#define PLF_PT_GUARDED_BY(x) PLF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (checked under -Wthread-safety-beta).
#define PLF_ACQUIRED_BEFORE(...) \
  PLF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define PLF_ACQUIRED_AFTER(...) \
  PLF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function requires the capability held on entry (and does not release it).
#define PLF_REQUIRES(...) \
  PLF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define PLF_REQUIRES_SHARED(...) \
  PLF_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (caller must not already hold it).
#define PLF_ACQUIRE(...) PLF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define PLF_ACQUIRE_SHARED(...) \
  PLF_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (caller must hold it).
#define PLF_RELEASE(...) PLF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define PLF_RELEASE_SHARED(...) \
  PLF_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define PLF_TRY_ACQUIRE(b, ...) \
  PLF_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Function must be called WITHOUT the capability held (non-reentrant locks).
#define PLF_EXCLUDES(...) PLF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function asserts (at run time) that the capability is held, teaching the
/// analysis it holds from this call onward. Used by ThreadChecker::check().
#define PLF_ASSERT_CAPABILITY(x) \
  PLF_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability (lock accessors).
#define PLF_RETURN_CAPABILITY(x) PLF_THREAD_ANNOTATION(lock_returned(x))

/// Opt a function out of the analysis entirely. Every use carries a comment
/// with the rationale (typically: a lock-free protocol, or a condition-wait
/// predicate that runs with the lock held by the wait loop itself).
#define PLF_NO_TSA PLF_THREAD_ANNOTATION(no_thread_safety_analysis)
