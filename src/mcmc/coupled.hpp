// Metropolis-coupled MCMC — (MC)^3, the algorithm MrBayes actually runs.
//
// N chains explore the posterior in parallel; chain i samples the posterior
// raised to the power beta_i = 1 / (1 + heat * i). Heated chains cross
// likelihood valleys easily; periodically a random pair of chains proposes
// to swap states, accepted with the usual Metropolis ratio
//   min(1, [p_j(x_i) p_i(x_j)] / [p_i(x_i) p_j(x_j)])
// which for tempered posteriors reduces to
//   exp((beta_a - beta_b) * (lnP_b - lnP_a)).
// Only the cold chain (i = 0) is sampled.
//
// Each chain owns its own PlfEngine, so the PLF work multiplies by the chain
// count — exactly how MrBayes multiplies the paper's fine-grain workload.
// Swapping exchanges chain HEATS rather than engine states (the standard
// pointer-swap implementation).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "mcmc/chain.hpp"

namespace plf::mcmc {

struct CoupledOptions {
  std::size_t n_chains = 4;       ///< MrBayes default
  double heat = 0.2;              ///< MrBayes "temp" default
  std::uint64_t swap_every = 10;  ///< generations between swap attempts
  McmcOptions chain;              ///< per-chain options (seed is the base)
};

struct CoupledResult {
  McmcResult cold;                   ///< samples from the cold chain
  std::uint64_t swaps_proposed = 0;
  std::uint64_t swaps_accepted = 0;
  std::vector<double> final_ln_likelihoods;  ///< per chain, cold first

  double swap_rate() const {
    return swaps_proposed == 0 ? 0.0
                               : static_cast<double>(swaps_accepted) /
                                     static_cast<double>(swaps_proposed);
  }
};

class CoupledChains {
 public:
  /// `engines` must all evaluate the same data/model family; engines.size()
  /// defines the chain count (options.n_chains is then ignored).
  CoupledChains(std::vector<core::PlfEngine*> engines,
                const CoupledOptions& options);

  /// Run all chains for `generations`, attempting swaps on schedule.
  CoupledResult run(std::uint64_t generations);

  /// Index (into the engine list) of the engine currently carrying the cold
  /// chain.
  std::size_t cold_index() const;

  double beta(std::size_t heat_rank) const {
    return 1.0 / (1.0 + options_.heat * static_cast<double>(heat_rank));
  }

 private:
  struct ChainState {
    core::PlfEngine* engine;
    std::unique_ptr<McmcChain> chain;
    std::size_t heat_rank;  ///< 0 = cold
  };

  bool heated_step(ChainState& cs);
  void attempt_swap();

  CoupledOptions options_;
  std::vector<ChainState> chains_;
  Rng rng_;
  std::uint64_t swaps_proposed_ = 0;
  std::uint64_t swaps_accepted_ = 0;
};

}  // namespace plf::mcmc
