// Metropolis-coupled MCMC — (MC)^3, the algorithm MrBayes actually runs.
//
// N chains explore the posterior in parallel; chain i samples the posterior
// raised to the power beta_i = 1 / (1 + heat * i). Heated chains cross
// likelihood valleys easily; periodically a random pair of chains proposes
// to swap states, accepted with the usual Metropolis ratio
//   min(1, [p_j(x_i) p_i(x_j)] / [p_i(x_i) p_j(x_j)])
// which for tempered posteriors reduces to
//   exp((beta_a - beta_b) * (lnP_b - lnP_a)).
// Only the cold chain (i = 0) is sampled.
//
// Each chain owns its own PlfEngine, so the PLF work multiplies by the chain
// count — exactly how MrBayes multiplies the paper's fine-grain workload.
// Swapping exchanges chain HEATS rather than engine states (the standard
// pointer-swap implementation).
//
// Execution modes (docs/SHARDING.md):
//   - sequential (default): each generation steps the chains one after
//     another on the calling thread;
//   - scheduled: with an exec::InstanceScheduler, each generation submits
//     every chain's step to its pinned driver thread and barriers before
//     the swap attempt. Chains only interact at those barriers, so the two
//     modes produce bit-identical trajectories — the scheduled one just
//     keeps the shared thread pool busy while other chains are in their
//     serial phases.
//
// Checkpointing: save_checkpoint/restore_checkpoint serialize the complete
// coupler state (generation, swap counters, coupler RNG, per-chain heat
// ranks + chain + engine state) through util::BinaryWriter with a 0-ULP
// resume guarantee; options.checkpoint_every wires periodic writes into
// run().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exec/scheduler.hpp"
#include "mcmc/chain.hpp"
#include "mcmc/online_diagnostics.hpp"

namespace plf::obs {
class TelemetryExporter;
}  // namespace plf::obs

namespace plf::mcmc {

struct CoupledOptions {
  std::size_t n_chains = 4;       ///< MrBayes default
  double heat = 0.2;              ///< MrBayes "temp" default
  std::uint64_t swap_every = 10;  ///< generations between swap attempts
  McmcOptions chain;              ///< per-chain options (seed is the base)
  /// Write a checkpoint to `checkpoint_path` every N generations (0 = off).
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Live telemetry sink (docs/OBSERVABILITY.md); not owned, may be null.
  /// On each generation the exporter says is due, run() publishes the
  /// mcmc.*/mc3.* gauges and writes one plf-telemetry-v1 record. Telemetry
  /// only READS chain state between generations — lnL trajectories are
  /// bit-identical with it on or off.
  obs::TelemetryExporter* telemetry = nullptr;
  /// Stop early once the cold chain's streaming lnL ESS reaches this value
  /// (checked at the sampling cadence; 0 = never). The prefix of the
  /// trajectory up to the stop is unchanged — stopping only truncates.
  double stop_at_ess = 0.0;
};

struct CoupledResult {
  McmcResult cold;                   ///< samples from the cold chain
  std::uint64_t swaps_proposed = 0;
  std::uint64_t swaps_accepted = 0;
  std::vector<double> final_ln_likelihoods;  ///< per chain, cold first
  /// Per heat-rank-pair swap tallies, keyed "lo-hi" ("0-1", "1-3", ...).
  std::map<std::string, ProposalStats> swap_pair_stats;
  /// True when options.stop_at_ess ended the run before target_generation.
  bool stopped_at_ess = false;

  double swap_rate() const {
    return swaps_proposed == 0 ? 0.0
                               : static_cast<double>(swaps_accepted) /
                                     static_cast<double>(swaps_proposed);
  }
};

class CoupledChains {
 public:
  /// Takes OWNERSHIP of the engines (the former raw-pointer signature was a
  /// lifetime footgun: chains hold their engine for the coupler's whole
  /// life, so the coupler owns them now). engines.size() defines the chain
  /// count (options.n_chains is then ignored); all engines must evaluate the
  /// same data/model family. With `scheduler`, each engine is registered as
  /// an instance labeled "chain<i>" and all stepping runs on the pinned
  /// drivers; engines are labeled (but not scheduled) without one whenever
  /// there is more than one chain, so their gauges don't collide.
  CoupledChains(std::vector<std::unique_ptr<core::PlfEngine>> engines,
                const CoupledOptions& options,
                exec::InstanceScheduler* scheduler = nullptr);

  /// Step all chains until the coupler's generation counter reaches
  /// `target_generation`, attempting swaps and writing checkpoints on
  /// schedule. A fresh coupler starts at generation 0, so this runs exactly
  /// `target_generation` generations; after restore_checkpoint it runs only
  /// the remainder — the resumed trajectory is bit-identical to the
  /// uninterrupted one.
  CoupledResult run(std::uint64_t target_generation);

  std::size_t n_chains() const { return chains_.size(); }
  std::uint64_t generation() const { return generation_; }

  /// Index (into the engine list) of the engine currently carrying the cold
  /// chain.
  std::size_t cold_index() const;

  /// Engine of chain `i` (engine-list order, not heat order). When running
  /// scheduled, entry points that touch confined engine state are only safe
  /// after run() returned or detach_engines() was called.
  core::PlfEngine& engine(std::size_t i) { return *chains_[i].engine; }

  double beta(std::size_t heat_rank) const {
    return 1.0 / (1.0 + options_.heat * static_cast<double>(heat_rank));
  }

  // --- checkpoint/restore (docs/SHARDING.md) ---
  void save_checkpoint(std::ostream& os);
  void restore_checkpoint(std::istream& is);
  /// File variants; save writes "<path>.tmp" then renames, so a crash never
  /// leaves a half-written checkpoint at `path`.
  void save_checkpoint_file(const std::string& path);
  void restore_checkpoint_file(const std::string& path);

  /// Release every engine's thread confinement so the caller's thread can
  /// read stats/publish gauges after a scheduled run. run() does this
  /// automatically before returning.
  void detach_engines();

  /// Streaming diagnostics over the cold chain's sampled lnL series (fed at
  /// the sampling cadence; survives checkpoint/restore bit-exactly).
  const StreamingEss& cold_ess() const { return cold_ess_; }

 private:
  struct ChainState {
    std::unique_ptr<core::PlfEngine> engine;
    std::unique_ptr<McmcChain> chain;
    std::size_t heat_rank;   ///< 0 = cold
    int instance_id = -1;    ///< scheduler id; -1 when unscheduled
  };

  /// One generation for every chain: submitted to the pinned drivers (then
  /// barriered) when scheduled, sequential otherwise.
  void step_all();
  void attempt_swap();
  /// Aggregate per-proposal-type tallies over every chain (the MC^3 totals
  /// the telemetry and result report).
  std::map<std::string, ProposalStats> aggregate_proposal_stats() const;
  /// Publish the mcmc.*/mc3.* gauges and write one telemetry record for
  /// generation `gen` (options_.telemetry != nullptr).
  void export_telemetry(std::uint64_t gen, double wall_s);
  /// Run `fn(index, chain state)` for every chain on its pinned driver
  /// (inline when unscheduled).
  void for_each_chain(
      const std::function<void(std::size_t, ChainState&)>& fn);

  CoupledOptions options_;
  std::vector<ChainState> chains_;
  exec::InstanceScheduler* scheduler_ = nullptr;
  Rng rng_;
  std::uint64_t generation_ = 0;
  std::uint64_t swaps_proposed_ = 0;
  std::uint64_t swaps_accepted_ = 0;
  /// Per heat-rank-pair swap tallies ("0-1" etc.), part of checkpoint state.
  std::map<std::string, ProposalStats> swap_pair_stats_;
  /// Streaming ESS over the cold chain's sampled lnL, checkpoint state too.
  StreamingEss cold_ess_;
};

}  // namespace plf::mcmc
