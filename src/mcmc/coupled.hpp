// Metropolis-coupled MCMC — (MC)^3, the algorithm MrBayes actually runs.
//
// N chains explore the posterior in parallel; chain i samples the posterior
// raised to the power beta_i = 1 / (1 + heat * i). Heated chains cross
// likelihood valleys easily; periodically a random pair of chains proposes
// to swap states, accepted with the usual Metropolis ratio
//   min(1, [p_j(x_i) p_i(x_j)] / [p_i(x_i) p_j(x_j)])
// which for tempered posteriors reduces to
//   exp((beta_a - beta_b) * (lnP_b - lnP_a)).
// Only the cold chain (i = 0) is sampled.
//
// Each chain owns its own PlfEngine, so the PLF work multiplies by the chain
// count — exactly how MrBayes multiplies the paper's fine-grain workload.
// Swapping exchanges chain HEATS rather than engine states (the standard
// pointer-swap implementation).
//
// Execution modes (docs/SHARDING.md):
//   - sequential (default): each generation steps the chains one after
//     another on the calling thread;
//   - scheduled: with an exec::InstanceScheduler, each generation submits
//     every chain's step to its pinned driver thread and barriers before
//     the swap attempt. Chains only interact at those barriers, so the two
//     modes produce bit-identical trajectories — the scheduled one just
//     keeps the shared thread pool busy while other chains are in their
//     serial phases.
//
// Checkpointing: save_checkpoint/restore_checkpoint serialize the complete
// coupler state (generation, swap counters, coupler RNG, per-chain heat
// ranks + chain + engine state) through util::BinaryWriter with a 0-ULP
// resume guarantee; options.checkpoint_every wires periodic writes into
// run().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exec/scheduler.hpp"
#include "mcmc/chain.hpp"

namespace plf::mcmc {

struct CoupledOptions {
  std::size_t n_chains = 4;       ///< MrBayes default
  double heat = 0.2;              ///< MrBayes "temp" default
  std::uint64_t swap_every = 10;  ///< generations between swap attempts
  McmcOptions chain;              ///< per-chain options (seed is the base)
  /// Write a checkpoint to `checkpoint_path` every N generations (0 = off).
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path;
};

struct CoupledResult {
  McmcResult cold;                   ///< samples from the cold chain
  std::uint64_t swaps_proposed = 0;
  std::uint64_t swaps_accepted = 0;
  std::vector<double> final_ln_likelihoods;  ///< per chain, cold first

  double swap_rate() const {
    return swaps_proposed == 0 ? 0.0
                               : static_cast<double>(swaps_accepted) /
                                     static_cast<double>(swaps_proposed);
  }
};

class CoupledChains {
 public:
  /// Takes OWNERSHIP of the engines (the former raw-pointer signature was a
  /// lifetime footgun: chains hold their engine for the coupler's whole
  /// life, so the coupler owns them now). engines.size() defines the chain
  /// count (options.n_chains is then ignored); all engines must evaluate the
  /// same data/model family. With `scheduler`, each engine is registered as
  /// an instance labeled "chain<i>" and all stepping runs on the pinned
  /// drivers; engines are labeled (but not scheduled) without one whenever
  /// there is more than one chain, so their gauges don't collide.
  CoupledChains(std::vector<std::unique_ptr<core::PlfEngine>> engines,
                const CoupledOptions& options,
                exec::InstanceScheduler* scheduler = nullptr);

  /// Step all chains until the coupler's generation counter reaches
  /// `target_generation`, attempting swaps and writing checkpoints on
  /// schedule. A fresh coupler starts at generation 0, so this runs exactly
  /// `target_generation` generations; after restore_checkpoint it runs only
  /// the remainder — the resumed trajectory is bit-identical to the
  /// uninterrupted one.
  CoupledResult run(std::uint64_t target_generation);

  std::size_t n_chains() const { return chains_.size(); }
  std::uint64_t generation() const { return generation_; }

  /// Index (into the engine list) of the engine currently carrying the cold
  /// chain.
  std::size_t cold_index() const;

  /// Engine of chain `i` (engine-list order, not heat order). When running
  /// scheduled, entry points that touch confined engine state are only safe
  /// after run() returned or detach_engines() was called.
  core::PlfEngine& engine(std::size_t i) { return *chains_[i].engine; }

  double beta(std::size_t heat_rank) const {
    return 1.0 / (1.0 + options_.heat * static_cast<double>(heat_rank));
  }

  // --- checkpoint/restore (docs/SHARDING.md) ---
  void save_checkpoint(std::ostream& os);
  void restore_checkpoint(std::istream& is);
  /// File variants; save writes "<path>.tmp" then renames, so a crash never
  /// leaves a half-written checkpoint at `path`.
  void save_checkpoint_file(const std::string& path);
  void restore_checkpoint_file(const std::string& path);

  /// Release every engine's thread confinement so the caller's thread can
  /// read stats/publish gauges after a scheduled run. run() does this
  /// automatically before returning.
  void detach_engines();

 private:
  struct ChainState {
    std::unique_ptr<core::PlfEngine> engine;
    std::unique_ptr<McmcChain> chain;
    std::size_t heat_rank;   ///< 0 = cold
    int instance_id = -1;    ///< scheduler id; -1 when unscheduled
  };

  /// One generation for every chain: submitted to the pinned drivers (then
  /// barriered) when scheduled, sequential otherwise.
  void step_all();
  void attempt_swap();
  /// Run `fn(index, chain state)` for every chain on its pinned driver
  /// (inline when unscheduled).
  void for_each_chain(
      const std::function<void(std::size_t, ChainState&)>& fn);

  CoupledOptions options_;
  std::vector<ChainState> chains_;
  exec::InstanceScheduler* scheduler_ = nullptr;
  Rng rng_;
  std::uint64_t generation_ = 0;
  std::uint64_t swaps_proposed_ = 0;
  std::uint64_t swaps_accepted_ = 0;
};

}  // namespace plf::mcmc
