// Posterior tree summaries (the MrBayes `sumt` role): split frequencies
// across a sample of trees and the majority-rule consensus tree.
//
// A "split" (bipartition) is the taxon set on one side of a branch. Splits
// are counted in a canonical taxon-name space fixed by the first tree added;
// splits present in more than half the samples are mutually compatible and
// nest into the majority-rule consensus, which may contain polytomies and is
// therefore rendered directly as a (multifurcating) Newick string.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "phylo/tree.hpp"

namespace plf::mcmc {

/// A taxon bitset (words of 64), in the summary's canonical taxon order.
using Split = std::vector<std::uint64_t>;

struct SplitFrequency {
  Split split;                      ///< canonical (taxon 0 excluded) side
  std::vector<int> taxa;            ///< member taxon indices, ascending
  std::uint64_t count = 0;
  double frequency = 0.0;
};

class TreeSampleSummary {
 public:
  /// Accumulate one sampled topology. The first tree fixes the taxon-name
  /// order; later trees may use any taxon indexing but must contain the
  /// same names.
  void add_tree(const phylo::Tree& tree);

  /// Convenience: parse and add a Newick sample (as stored by McmcResult).
  void add_newick(const std::string& newick);

  std::size_t n_trees() const { return n_trees_; }
  const std::vector<std::string>& taxon_names() const { return names_; }

  /// All observed nontrivial splits with their sample frequencies,
  /// most-frequent first (ties broken by clade size then lexicographic).
  std::vector<SplitFrequency> split_frequencies() const;

  /// Majority-rule consensus (splits with frequency > 0.5), rendered as a
  /// Newick string that may contain polytomies. Internal nodes are labeled
  /// with their split's posterior frequency (two decimals), as MrBayes does.
  std::string majority_rule_newick() const;

  /// Fraction of sampled trees whose full topology matches `tree`.
  double topology_frequency(const phylo::Tree& tree) const;

 private:
  std::vector<std::string> names_;
  std::size_t words_ = 0;
  std::size_t n_trees_ = 0;
  std::map<Split, std::uint64_t> counts_;
  /// Multiset of full topologies (set of splits) for topology_frequency.
  std::map<std::vector<Split>, std::uint64_t> topology_counts_;
};

}  // namespace plf::mcmc
