// MCMC trace diagnostics: autocorrelation and effective sample size — what
// practitioners run (Tracer, MrBayes' `sump`) before trusting a chain.
#pragma once

#include <cstddef>
#include <vector>

namespace plf::mcmc {

struct TraceSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;           ///< sample variance (n-1)
  double autocorrelation_time = 1.0;  ///< integrated, >= 1
  double ess = 0.0;                ///< n / autocorrelation_time
};

/// Lag-k autocorrelation of a series (biased, standard normalization).
/// Degenerate inputs have defined values instead of throwing or propagating
/// NaN: a series with fewer than 2 samples, a lag >= n (no overlapping
/// pairs), or a constant series (zero variance) returns 1.0 at lag 0 and
/// 0.0 at any other lag.
double autocorrelation(const std::vector<double>& series, std::size_t lag);

/// Effective sample size via Geyer's initial positive sequence estimator:
/// sum consecutive autocorrelation pairs while they remain positive.
/// Degenerate traces summarize to defined values rather than throwing:
/// an empty series gives {n=0, mean=0, variance=0, tau=1, ess=0}; a single
/// sample gives {n=1, mean=x, variance=0, tau=1, ess=1}; a constant series
/// gives variance 0, tau 1, ess = n (every sample is an exact observation
/// of the one value). No input produces NaN.
TraceSummary summarize_trace(const std::vector<double>& series);

}  // namespace plf::mcmc
