// MCMC trace diagnostics: autocorrelation and effective sample size — what
// practitioners run (Tracer, MrBayes' `sump`) before trusting a chain.
#pragma once

#include <cstddef>
#include <vector>

namespace plf::mcmc {

struct TraceSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double variance = 0.0;           ///< sample variance (n-1)
  double autocorrelation_time = 1.0;  ///< integrated, >= 1
  double ess = 0.0;                ///< n / autocorrelation_time
};

/// Lag-k autocorrelation of a series (biased, standard normalization).
double autocorrelation(const std::vector<double>& series, std::size_t lag);

/// Effective sample size via Geyer's initial positive sequence estimator:
/// sum consecutive autocorrelation pairs while they remain positive.
TraceSummary summarize_trace(const std::vector<double>& series);

}  // namespace plf::mcmc
