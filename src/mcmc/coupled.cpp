#include "mcmc/coupled.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "util/clock.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace plf::mcmc {

CoupledChains::CoupledChains(
    std::vector<std::unique_ptr<core::PlfEngine>> engines,
    const CoupledOptions& options, exec::InstanceScheduler* scheduler)
    : options_(options),
      scheduler_(scheduler),
      rng_(options.chain.seed ^ 0xC0FFEEull) {
  PLF_CHECK(!engines.empty(), "coupled chains need at least one engine");
  PLF_CHECK(options.heat >= 0.0, "heat must be nonnegative");
  options_.n_chains = engines.size();

  for (std::size_t i = 0; i < engines.size(); ++i) {
    ChainState cs;
    cs.engine = std::move(engines[i]);
    cs.heat_rank = i;
    McmcOptions chain_opts = options_.chain;
    chain_opts.seed = options_.chain.seed + i;
    chain_opts.likelihood_power = beta(i);
    chain_opts.sample_every = 0;  // sampling is driven by the coupler
    // The chain constructor evaluates the initial likelihood on THIS thread;
    // scheduler registration below detaches the engine so its pinned driver
    // rebinds on the first scheduled step.
    cs.chain = std::make_unique<McmcChain>(*cs.engine, chain_opts);
    const std::string label = "chain" + std::to_string(i);
    if (scheduler_ != nullptr) {
      cs.instance_id = scheduler_->register_instance(*cs.engine, label);
    } else if (engines.size() > 1) {
      // Unscheduled multi-chain runs still label each engine so per-instance
      // gauges ("chain1.engine.down_calls", ...) don't collide in the
      // metrics registry. Single-chain runs keep the legacy bare names.
      cs.engine->set_instance_label(label);
    }
    chains_.push_back(std::move(cs));
  }
}

std::size_t CoupledChains::cold_index() const {
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    if (chains_[i].heat_rank == 0) return i;
  }
  throw Error("coupled chains: no cold chain (internal error)");
}

void CoupledChains::detach_engines() {
  for (auto& cs : chains_) cs.engine->detach_thread();
}

void CoupledChains::for_each_chain(
    const std::function<void(std::size_t, ChainState&)>& fn) {
  if (scheduler_ == nullptr) {
    for (std::size_t i = 0; i < chains_.size(); ++i) fn(i, chains_[i]);
    return;
  }
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    ChainState& cs = chains_[i];
    scheduler_->submit(cs.instance_id, [&fn, i, &cs] { fn(i, cs); });
  }
  scheduler_->barrier();
}

void CoupledChains::step_all() {
  for_each_chain([](std::size_t, ChainState& cs) { cs.chain->step(); });
}

void CoupledChains::attempt_swap() {
  if (chains_.size() < 2) return;
  ++swaps_proposed_;

  // Pick a random pair (MrBayes default behaviour).
  const std::size_t i = rng_.below(chains_.size());
  std::size_t j = rng_.below(chains_.size() - 1);
  if (j >= i) ++j;

  ChainState& a = chains_[i];
  ChainState& b = chains_[j];
  const double beta_a = beta(a.heat_rank);
  const double beta_b = beta(b.heat_rank);
  const double ln_a = a.chain->ln_likelihood();
  const double ln_b = b.chain->ln_likelihood();

  // Per-pair tallies are keyed on the HEAT RANKS involved (not the engine
  // indices): "0-1" is always cold-vs-first-heated, the pair practitioners
  // watch — a healthy ladder swaps adjacent ranks often.
  const std::size_t lo = std::min(a.heat_rank, b.heat_rank);
  const std::size_t hi = std::max(a.heat_rank, b.heat_rank);
  ProposalStats& pair =
      swap_pair_stats_[std::to_string(lo) + "-" + std::to_string(hi)];
  ++pair.proposed;

  // Tempered-likelihood targets: priors cancel in the swap ratio.
  const double log_ratio = (beta_a - beta_b) * (ln_b - ln_a);
  if (log_ratio >= 0.0 || std::log(rng_.uniform() + 1e-300) < log_ratio) {
    std::swap(a.heat_rank, b.heat_rank);
    a.chain->set_likelihood_power(beta(a.heat_rank));
    b.chain->set_likelihood_power(beta(b.heat_rank));
    ++swaps_accepted_;
    ++pair.accepted;
  }
}

std::map<std::string, ProposalStats> CoupledChains::aggregate_proposal_stats()
    const {
  std::map<std::string, ProposalStats> agg;
  for (const auto& cs : chains_) {
    for (const auto& [name, st] : cs.chain->proposal_stats()) {
      agg[name].proposed += st.proposed;
      agg[name].accepted += st.accepted;
    }
  }
  return agg;
}

void CoupledChains::export_telemetry(std::uint64_t gen, double wall_s) {
  obs::TelemetryExporter* exporter = options_.telemetry;
  const std::size_t cold_i = cold_index();

  obs::TelemetryRecord rec;
  rec.generation = gen;
  rec.wall_s = wall_s;
  rec.n_samples = cold_ess_.count();
  rec.ln_likelihood = chains_[cold_i].chain->ln_likelihood();
  rec.mean_ln_likelihood = cold_ess_.mean();
  rec.ess = cold_ess_.ess();
  rec.ess_per_sec = wall_s > 0.0 ? rec.ess / wall_s : 0.0;
  rec.rhat = cold_ess_.split_rhat();

  const std::map<std::string, ProposalStats> agg = aggregate_proposal_stats();
  for (const auto& [name, st] : agg) {
    rec.acceptance.push_back(
        obs::TelemetryRate{name, st.proposed, st.accepted});
  }
  rec.swaps.proposed = swaps_proposed_;
  rec.swaps.accepted = swaps_accepted_;
  for (const auto& [name, st] : swap_pair_stats_) {
    rec.swap_pairs.push_back(
        obs::TelemetryRate{name, st.proposed, st.accepted});
  }
  // Arena counters are mutex-guarded inside the arena, readable from the
  // control thread even while engines stay confined to their drivers.
  rec.extra.emplace_back(
      "arena.hit_rate",
      chains_[cold_i].engine->arena().counters().hit_rate());

  if (obs::MetricsRegistry* reg = exporter->registry(); reg != nullptr) {
    // Refresh the gauges the embedded metrics snapshot carries. Engine
    // stats publishing is thread-confined (it PLF_CHECKs the binding), so
    // route it through the pinned drivers like every other engine touch.
    for_each_chain(
        [reg](std::size_t, ChainState& cs) { cs.engine->publish_stats(*reg); });
    publish_proposal_gauges(*reg, agg);
    reg->set_gauge(reg->gauge(obs::kGaugeMcmcColdLnL), rec.ln_likelihood);
    reg->set_gauge(reg->gauge(obs::kGaugeMcmcColdEss), rec.ess);
    reg->set_gauge(reg->gauge(obs::kGaugeMcmcColdRhat), rec.rhat);
    reg->set_gauge(reg->gauge(obs::kGaugeMc3SwapRate),
                   rec.swaps.rate());
    for (const obs::TelemetryRate& p : rec.swap_pairs) {
      reg->set_gauge(
          reg->gauge(std::string(obs::kGaugeMc3SwapPairPrefix) + p.name),
          p.rate());
    }
  }
  exporter->export_record(rec);
}

CoupledResult CoupledChains::run(std::uint64_t target_generation) {
  Stopwatch wall;
  CoupledResult result;
  // The caller may have bound the engines to its own thread (construction,
  // restore, stats reads); release them so the pinned drivers can rebind.
  if (scheduler_ != nullptr) detach_engines();

  const std::uint64_t sample_every =
      options_.chain.sample_every == 0 ? 100 : options_.chain.sample_every;

  auto sample_cold = [&](std::uint64_t gen) {
    const ChainState& cold = chains_[cold_index()];
    result.cold.samples.push_back(
        McmcSample{gen, cold.chain->ln_likelihood(),
                   cold.engine->tree().total_length(),
                   cold.engine->model_params().gamma_shape});
    if (options_.chain.collect_trees) {
      result.cold.sampled_trees.push_back(cold.engine->tree().to_newick());
    }
  };
  // Reading the cold tree touches confined engine state, so route the
  // initial sample through the drivers like everything else.
  for_each_chain([&](std::size_t i, ChainState&) {
    if (i == cold_index()) sample_cold(generation_);
  });
  result.cold.best_ln_likelihood = chains_[cold_index()].chain->ln_likelihood();

  for (std::uint64_t g = generation_ + 1; g <= target_generation; ++g) {
    generation_ = g;
    step_all();
    if (options_.swap_every != 0 && g % options_.swap_every == 0) {
      attempt_swap();
    }
    if (g % sample_every == 0) {
      for_each_chain([&](std::size_t i, ChainState&) {
        if (i == cold_index()) sample_cold(g);
      });
      // Feed the streaming diagnostics exactly at the (absolute-generation)
      // sampling cadence, so a resumed run continues the estimator sequence
      // the uninterrupted run would have produced.
      cold_ess_.add(chains_[cold_index()].chain->ln_likelihood());
      if (options_.stop_at_ess > 0.0 && cold_ess_.count() >= 8 &&
          cold_ess_.ess() >= options_.stop_at_ess) {
        result.stopped_at_ess = true;
      }
    }
    result.cold.best_ln_likelihood =
        std::max(result.cold.best_ln_likelihood,
                 chains_[cold_index()].chain->ln_likelihood());
    if (options_.checkpoint_every != 0 && !options_.checkpoint_path.empty() &&
        g % options_.checkpoint_every == 0) {
      save_checkpoint_file(options_.checkpoint_path);
    }
    // Telemetry last, after the generation's state is final: it only READS
    // lnL doubles and counters, never the RNG streams or engine float
    // state, so trajectories are bit-identical with telemetry on or off.
    if (options_.telemetry != nullptr &&
        (options_.telemetry->due(g) || result.stopped_at_ess)) {
      export_telemetry(g, wall.seconds());
    }
    if (result.stopped_at_ess) break;
  }

  // Final newick read also touches confined tree state.
  const std::size_t cold_i = cold_index();
  for_each_chain([&](std::size_t i, ChainState& cs) {
    if (i == cold_i) {
      result.cold.final_tree_newick = cs.engine->tree().to_newick();
    }
  });
  const ChainState& cold = chains_[cold_i];
  result.cold.final_ln_likelihood = cold.chain->ln_likelihood();
  result.cold.wall_seconds = wall.seconds();
  // Aggregate proposal statistics over all chains (the PLF workload of an
  // (MC)^3 run is the SUM over chains — how MrBayes multiplies the paper's
  // kernel invocations).
  result.cold.proposals = aggregate_proposal_stats();
  result.swaps_proposed = swaps_proposed_;
  result.swaps_accepted = swaps_accepted_;
  result.swap_pair_stats = swap_pair_stats_;
  // Cold chain first, then by heat rank.
  std::vector<const ChainState*> order;
  for (const auto& cs : chains_) order.push_back(&cs);
  std::sort(order.begin(), order.end(),
            [](const ChainState* x, const ChainState* y) {
              return x->heat_rank < y->heat_rank;
            });
  for (const ChainState* cs : order) {
    result.final_ln_likelihoods.push_back(cs->chain->ln_likelihood());
  }
  // Hand the engines back to the caller for stats reads / gauge publishing.
  if (scheduler_ != nullptr) detach_engines();
  return result;
}

void CoupledChains::save_checkpoint(std::ostream& os) {
  if (scheduler_ != nullptr) detach_engines();
  // Engine state is serialized on each chain's confinement thread into a
  // per-chain blob, then framed into the single stream — same wire format in
  // both execution modes.
  std::vector<std::string> blobs(chains_.size());
  for_each_chain([&blobs](std::size_t i, ChainState& cs) {
    std::ostringstream buf;
    util::BinaryWriter bw(buf);
    cs.engine->save_state(bw);
    blobs[i] = buf.str();
  });

  util::BinaryWriter w(os);
  w.section("MC3C");
  w.u64(chains_.size());
  w.u64(generation_);
  w.u64(swaps_proposed_);
  w.u64(swaps_accepted_);
  const Rng::State rs = rng_.state();
  w.u64_array(rs.s.data(), rs.s.size());
  w.u8(rs.have_spare_normal ? 1 : 0);
  w.f64(rs.spare_normal);
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    w.u64(chains_[i].heat_rank);
    chains_[i].chain->save_state(w);
    w.str(blobs[i]);
  }
  // Streaming-diagnostics state (checkpoint format v2, docs/SHARDING.md):
  // telemetry written after --resume must continue the estimator sequence
  // bit-for-bit, which recomputing from the (unsaved) sample list could not.
  w.section("TDIA");
  cold_ess_.save_state(w);
  w.u64(swap_pair_stats_.size());
  for (const auto& [name, st] : swap_pair_stats_) {
    w.str(name);
    w.u64(st.proposed);
    w.u64(st.accepted);
  }
  if (scheduler_ != nullptr) detach_engines();
}

void CoupledChains::restore_checkpoint(std::istream& is) {
  if (scheduler_ != nullptr) detach_engines();
  util::BinaryReader r(is);
  r.section("MC3C");
  const std::uint64_t n = r.u64();
  PLF_CHECK(n == chains_.size(),
            "checkpoint chain count does not match this coupler");
  generation_ = r.u64();
  swaps_proposed_ = r.u64();
  swaps_accepted_ = r.u64();
  Rng::State rs;
  const std::vector<std::uint64_t> s = r.u64_array();
  PLF_CHECK(s.size() == rs.s.size(), "checkpoint: bad coupler rng state");
  std::copy(s.begin(), s.end(), rs.s.begin());
  rs.have_spare_normal = r.u8() != 0;
  rs.spare_normal = r.f64();
  rng_.set_state(rs);
  std::vector<std::string> blobs(chains_.size());
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    chains_[i].heat_rank = r.u64();
    chains_[i].chain->restore_state(r);
    blobs[i] = r.str();
  }
  r.section("TDIA");
  cold_ess_.restore_state(r);
  swap_pair_stats_.clear();
  const std::uint64_t n_pairs = r.u64();
  for (std::uint64_t i = 0; i < n_pairs; ++i) {
    const std::string name = r.str();
    ProposalStats st;
    st.proposed = r.u64();
    st.accepted = r.u64();
    swap_pair_stats_[name] = st;
  }
  for_each_chain([&blobs](std::size_t i, ChainState& cs) {
    std::istringstream buf(blobs[i]);
    util::BinaryReader br(buf);
    cs.engine->restore_state(br);
  });
  if (scheduler_ != nullptr) detach_engines();
}

void CoupledChains::save_checkpoint_file(const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    PLF_CHECK(os.good(), "cannot open checkpoint file for writing: " + tmp);
    save_checkpoint(os);
    PLF_CHECK(os.good(), "short write to checkpoint file: " + tmp);
  }
  PLF_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
            "cannot move checkpoint into place: " + path);
}

void CoupledChains::restore_checkpoint_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  PLF_CHECK(is.good(), "cannot open checkpoint file: " + path);
  restore_checkpoint(is);
}

}  // namespace plf::mcmc
