#include "mcmc/coupled.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/clock.hpp"
#include "util/error.hpp"

namespace plf::mcmc {

CoupledChains::CoupledChains(std::vector<core::PlfEngine*> engines,
                             const CoupledOptions& options)
    : options_(options), rng_(options.chain.seed ^ 0xC0FFEEull) {
  PLF_CHECK(!engines.empty(), "coupled chains need at least one engine");
  PLF_CHECK(options.heat >= 0.0, "heat must be nonnegative");
  options_.n_chains = engines.size();

  for (std::size_t i = 0; i < engines.size(); ++i) {
    ChainState cs;
    cs.engine = engines[i];
    cs.heat_rank = i;
    McmcOptions chain_opts = options_.chain;
    chain_opts.seed = options_.chain.seed + i;
    chain_opts.likelihood_power = beta(i);
    chain_opts.sample_every = 0;  // sampling is driven by the coupler
    cs.chain = std::make_unique<McmcChain>(*engines[i], chain_opts);
    chains_.push_back(std::move(cs));
  }
}

std::size_t CoupledChains::cold_index() const {
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    if (chains_[i].heat_rank == 0) return i;
  }
  throw Error("coupled chains: no cold chain (internal error)");
}

void CoupledChains::attempt_swap() {
  if (chains_.size() < 2) return;
  ++swaps_proposed_;

  // Pick a random pair (MrBayes default behaviour).
  const std::size_t i = rng_.below(chains_.size());
  std::size_t j = rng_.below(chains_.size() - 1);
  if (j >= i) ++j;

  ChainState& a = chains_[i];
  ChainState& b = chains_[j];
  const double beta_a = beta(a.heat_rank);
  const double beta_b = beta(b.heat_rank);
  const double ln_a = a.chain->ln_likelihood();
  const double ln_b = b.chain->ln_likelihood();

  // Tempered-likelihood targets: priors cancel in the swap ratio.
  const double log_ratio = (beta_a - beta_b) * (ln_b - ln_a);
  if (log_ratio >= 0.0 || std::log(rng_.uniform() + 1e-300) < log_ratio) {
    std::swap(a.heat_rank, b.heat_rank);
    a.chain->set_likelihood_power(beta(a.heat_rank));
    b.chain->set_likelihood_power(beta(b.heat_rank));
    ++swaps_accepted_;
  }
}

CoupledResult CoupledChains::run(std::uint64_t generations) {
  Stopwatch wall;
  CoupledResult result;

  const std::uint64_t sample_every =
      options_.chain.sample_every == 0 ? 100 : options_.chain.sample_every;

  auto sample_cold = [&](std::uint64_t gen) {
    const ChainState& cold = chains_[cold_index()];
    result.cold.samples.push_back(
        McmcSample{gen, cold.chain->ln_likelihood(),
                   cold.engine->tree().total_length(),
                   cold.engine->model_params().gamma_shape});
    if (options_.chain.collect_trees) {
      result.cold.sampled_trees.push_back(cold.engine->tree().to_newick());
    }
  };
  sample_cold(0);
  result.cold.best_ln_likelihood = chains_[cold_index()].chain->ln_likelihood();

  for (std::uint64_t g = 1; g <= generations; ++g) {
    for (auto& cs : chains_) cs.chain->step();
    if (options_.swap_every != 0 && g % options_.swap_every == 0) {
      attempt_swap();
    }
    if (g % sample_every == 0) sample_cold(g);
    result.cold.best_ln_likelihood =
        std::max(result.cold.best_ln_likelihood,
                 chains_[cold_index()].chain->ln_likelihood());
  }

  const ChainState& cold = chains_[cold_index()];
  result.cold.final_ln_likelihood = cold.chain->ln_likelihood();
  result.cold.final_tree_newick = cold.engine->tree().to_newick();
  result.cold.wall_seconds = wall.seconds();
  // Aggregate proposal statistics over all chains (the PLF workload of an
  // (MC)^3 run is the SUM over chains — how MrBayes multiplies the paper's
  // kernel invocations).
  for (const auto& cs : chains_) {
    for (const auto& [name, st] : cs.chain->proposal_stats()) {
      auto& agg = result.cold.proposals[name];
      agg.proposed += st.proposed;
      agg.accepted += st.accepted;
    }
  }
  result.swaps_proposed = swaps_proposed_;
  result.swaps_accepted = swaps_accepted_;
  // Cold chain first, then by heat rank.
  std::vector<const ChainState*> order;
  for (const auto& cs : chains_) order.push_back(&cs);
  std::sort(order.begin(), order.end(),
            [](const ChainState* x, const ChainState* y) {
              return x->heat_rank < y->heat_rank;
            });
  for (const ChainState* cs : order) {
    result.final_ln_likelihoods.push_back(cs->chain->ln_likelihood());
  }
  return result;
}

}  // namespace plf::mcmc
