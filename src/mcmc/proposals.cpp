#include "mcmc/proposals.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace plf::mcmc {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double dirichlet_log_pdf(const std::vector<double>& alpha,
                         const std::vector<double>& x) {
  PLF_CHECK(alpha.size() == x.size(), "dirichlet_log_pdf: size mismatch");
  double sum_a = 0.0;
  double lp = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    PLF_CHECK(alpha[i] > 0.0, "dirichlet_log_pdf: alpha must be positive");
    if (x[i] <= 0.0) return kNegInf;
    sum_a += alpha[i];
    lp += (alpha[i] - 1.0) * std::log(x[i]) - std::lgamma(alpha[i]);
  }
  return lp + std::lgamma(sum_a);
}

double BranchLengthMultiplier::propose(core::PlfEngine& engine,
                                       Rng& rng) const {
  const auto branches = engine.tree().branch_nodes();
  const int b = branches[rng.below(branches.size())];
  const double old_len = engine.tree().branch_length(b);
  const double c = std::exp(t_.branch_lambda * (rng.uniform() - 0.5));
  const double new_len = old_len * c;
  if (new_len < t_.min_branch_length || new_len > t_.max_branch_length) {
    return kNegInf;
  }
  engine.set_branch_length(b, new_len);
  // Hastings ratio of the multiplier move is c; Exp(rate) prior ratio is
  // exp(-rate * (new - old)).
  return std::log(c) - t_.branch_exp_prior_rate * (new_len - old_len);
}

double NniMove::propose(core::PlfEngine& engine, Rng& rng) const {
  const auto edges = engine.tree().internal_edge_nodes();
  if (edges.empty()) return kNegInf;  // 4-taxon star has none after rooting
  const int v = edges[rng.below(edges.size())];
  engine.apply_nni(v, rng.uniform() < 0.5);
  // Symmetric move, uniform topology prior.
  return 0.0;
}

double GammaShapeMultiplier::propose(core::PlfEngine& engine, Rng& rng) const {
  phylo::GtrParams p = engine.model_params();
  const double c = std::exp(t_.shape_lambda * (rng.uniform() - 0.5));
  const double new_shape = p.gamma_shape * c;
  if (new_shape < t_.min_shape || new_shape > t_.max_shape) return kNegInf;
  const double delta = new_shape - p.gamma_shape;
  p.gamma_shape = new_shape;
  engine.set_model(p);
  return std::log(c) - t_.shape_exp_prior_rate * delta;
}

double GtrRatesDirichlet::propose(core::PlfEngine& engine, Rng& rng) const {
  phylo::GtrParams p = engine.model_params();
  // Work on the normalized 6-simplex (the scale of Q is normalized away).
  std::vector<double> cur(p.rates.begin(), p.rates.end());
  double sum = 0.0;
  for (double r : cur) sum += r;
  for (auto& r : cur) r /= sum;

  std::vector<double> alpha(cur.size());
  for (std::size_t i = 0; i < cur.size(); ++i) {
    alpha[i] = t_.rates_concentration * cur[i];
  }
  const std::vector<double> prop = rng.dirichlet(alpha);
  for (double x : prop) {
    if (x < 1e-6) return kNegInf;  // keep Q well-conditioned
  }

  std::vector<double> alpha_rev(prop.size());
  for (std::size_t i = 0; i < prop.size(); ++i) {
    alpha_rev[i] = t_.rates_concentration * prop[i];
  }
  // Flat Dirichlet(1,...,1) prior: prior ratio 1.
  const double log_hastings =
      dirichlet_log_pdf(alpha_rev, cur) - dirichlet_log_pdf(alpha, prop);

  for (std::size_t i = 0; i < prop.size(); ++i) p.rates[i] = prop[i];
  engine.set_model(p);
  return log_hastings;
}

double PinvSlide::propose(core::PlfEngine& engine, Rng& rng) const {
  phylo::GtrParams p = engine.model_params();
  double x = p.p_invariant + t_.pinv_window * (rng.uniform() - 0.5);
  // Reflect at the prior boundaries (keeps the move symmetric).
  if (x < 0.0) x = -x;
  if (x > t_.max_pinv) x = 2.0 * t_.max_pinv - x;
  if (x < 0.0 || x >= 1.0) return -std::numeric_limits<double>::infinity();
  p.p_invariant = x;
  engine.set_model(p);
  return 0.0;  // symmetric move, flat prior
}

double SprMove::propose(core::PlfEngine& engine, Rng& rng) const {
  const auto& tree = engine.tree();
  std::vector<int> prunable;
  for (int id = 0; id < static_cast<int>(tree.n_nodes()); ++id) {
    if (id == tree.root() || id == tree.outgroup()) continue;
    const int parent = tree.node(id).parent;
    if (parent == phylo::kNoNode || parent == tree.root()) continue;
    prunable.push_back(id);
  }
  if (prunable.empty()) return kNegInf;
  const int s = prunable[rng.below(prunable.size())];
  const auto targets = tree.spr_valid_targets(s);
  if (targets.empty()) return kNegInf;
  const int target = targets[rng.below(targets.size())];

  const int u = tree.node(s).parent;
  const int w = tree.node(u).left == s ? tree.node(u).right : tree.node(u).left;
  const double merged = tree.branch_length(u) + tree.branch_length(w);
  const double t_len = tree.branch_length(target);
  const double x = t_len * rng.uniform();
  if (x <= 0.0 || x >= t_len || merged <= 0.0) return kNegInf;

  engine.apply_spr(s, target, x);
  // Forward split density 1/t_len; the reverse move splits the merged
  // branch (1/merged). Counts cancel (see header).
  return std::log(t_len) - std::log(merged);
}

double BaseFrequenciesDirichlet::propose(core::PlfEngine& engine,
                                         Rng& rng) const {
  phylo::GtrParams p = engine.model_params();
  std::vector<double> cur(p.pi.begin(), p.pi.end());

  std::vector<double> alpha(4);
  for (std::size_t i = 0; i < 4; ++i) alpha[i] = t_.pi_concentration * cur[i];
  const std::vector<double> prop = rng.dirichlet(alpha);
  for (double x : prop) {
    if (x < 1e-4) return kNegInf;
  }
  std::vector<double> alpha_rev(4);
  for (std::size_t i = 0; i < 4; ++i) alpha_rev[i] = t_.pi_concentration * prop[i];
  const double log_hastings =
      dirichlet_log_pdf(alpha_rev, cur) - dirichlet_log_pdf(alpha, prop);

  for (std::size_t i = 0; i < 4; ++i) p.pi[i] = prop[i];
  engine.set_model(p);
  return log_hastings;
}

}  // namespace plf::mcmc
