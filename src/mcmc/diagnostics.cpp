#include "mcmc/diagnostics.hpp"

#include <algorithm>
#include <cmath>

namespace plf::mcmc {

namespace {

double mean_of(const std::vector<double>& s) {
  double m = 0.0;
  for (double x : s) m += x;
  return m / static_cast<double>(s.size());
}

/// Autocovariance at `lag` around a precomputed mean (1/n normalization).
double autocov(const std::vector<double>& s, double mean, std::size_t lag) {
  double c = 0.0;
  for (std::size_t i = 0; i + lag < s.size(); ++i) {
    c += (s[i] - mean) * (s[i + lag] - mean);
  }
  return c / static_cast<double>(s.size());
}

}  // namespace

double autocorrelation(const std::vector<double>& series, std::size_t lag) {
  // Degenerate inputs (see header): too short, or no overlapping pairs at
  // this lag — by convention a series is perfectly correlated with itself
  // at lag 0 and carries no evidence of correlation at any other lag.
  if (series.size() < 2 || lag >= series.size()) {
    return lag == 0 ? 1.0 : 0.0;
  }
  const double m = mean_of(series);
  const double c0 = autocov(series, m, 0);
  if (c0 <= 0.0) return lag == 0 ? 1.0 : 0.0;  // constant series
  return autocov(series, m, lag) / c0;
}

TraceSummary summarize_trace(const std::vector<double>& series) {
  TraceSummary out;
  out.n = series.size();
  if (series.empty()) return out;  // {n=0, mean=0, variance=0, tau=1, ess=0}
  if (series.size() == 1) {
    out.mean = series[0];
    out.ess = 1.0;  // variance 0, tau 1: one exact observation
    return out;
  }
  out.mean = mean_of(series);

  double ss = 0.0;
  for (double x : series) ss += (x - out.mean) * (x - out.mean);
  out.variance = ss / static_cast<double>(series.size() - 1);

  const double c0 = autocov(series, out.mean, 0);
  if (c0 <= 0.0) {
    // Constant chain: every sample equals the mean; ESS is the sample count.
    out.autocorrelation_time = 1.0;
    out.ess = static_cast<double>(out.n);
    return out;
  }

  // Geyer initial positive sequence: sum rho(2k)+rho(2k+1) while positive.
  double tau = 1.0;
  const std::size_t max_lag = series.size() / 2;
  for (std::size_t k = 1; k + 1 <= max_lag; k += 2) {
    const double pair = autocov(series, out.mean, k) / c0 +
                        autocov(series, out.mean, k + 1) / c0;
    if (pair <= 0.0) break;
    tau += 2.0 * pair;
  }
  out.autocorrelation_time = std::max(1.0, tau);
  out.ess = static_cast<double>(out.n) / out.autocorrelation_time;
  return out;
}

}  // namespace plf::mcmc
