#include "mcmc/chain.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/profile.hpp"
#include "util/clock.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"
#include "util/serialize.hpp"

namespace plf::mcmc {

std::uint64_t McmcResult::total_proposed() const {
  std::uint64_t n = 0;
  for (const auto& [name, s] : proposals) n += s.proposed;
  return n;
}

std::uint64_t McmcResult::total_accepted() const {
  std::uint64_t n = 0;
  for (const auto& [name, s] : proposals) n += s.accepted;
  return n;
}

McmcChain::McmcChain(core::PlfEngine& engine, const McmcOptions& options)
    : engine_(&engine), opts_(options), rng_(options.seed) {
  proposals_.push_back(std::make_unique<BranchLengthMultiplier>(opts_.tuning));
  weights_.push_back(opts_.w_branch);
  proposals_.push_back(std::make_unique<NniMove>(opts_.tuning));
  weights_.push_back(opts_.w_nni);
  proposals_.push_back(std::make_unique<GammaShapeMultiplier>(opts_.tuning));
  weights_.push_back(opts_.w_shape);
  proposals_.push_back(std::make_unique<GtrRatesDirichlet>(opts_.tuning));
  weights_.push_back(opts_.w_rates);
  proposals_.push_back(std::make_unique<BaseFrequenciesDirichlet>(opts_.tuning));
  weights_.push_back(opts_.w_pi);
  if (opts_.w_pinv > 0.0) {
    proposals_.push_back(std::make_unique<PinvSlide>(opts_.tuning));
    weights_.push_back(opts_.w_pinv);
  }
  if (opts_.w_spr > 0.0) {
    proposals_.push_back(std::make_unique<SprMove>(opts_.tuning));
    weights_.push_back(opts_.w_spr);
  }

  ln_lik_ = engine_->log_likelihood();
}

const Proposal& McmcChain::draw_proposal(Rng& rng) const {
  return *proposals_[rng.categorical(weights_)];
}

bool McmcChain::step() {
  PLF_PROF_SCOPE(obs::kTimerMcmcGeneration);
  PLF_PROF_COUNT(obs::kCounterMcmcGenerations, 1);
  ++generation_;
  const Proposal& move = draw_proposal(rng_);
  ProposalStats& st = stats_[move.name()];
  ++st.proposed;

  engine_->begin_proposal();
  const double log_prior_hastings = move.propose(*engine_, rng_);

  bool accept = false;
  if (std::isfinite(log_prior_hastings)) {
    const double proposed_ln_lik = engine_->log_likelihood();
    const double log_ratio =
        opts_.likelihood_power * (proposed_ln_lik - ln_lik_) +
        log_prior_hastings;
    if (log_ratio >= 0.0 || std::log(rng_.uniform() + 1e-300) < log_ratio) {
      accept = true;
      ln_lik_ = proposed_ln_lik;
    }
  }

  if (accept) {
    engine_->accept();
    ++st.accepted;
  } else {
    engine_->reject();
  }
  return accept;
}

McmcResult McmcChain::run(std::uint64_t generations) {
  Stopwatch wall;
  const core::EngineStats before = engine_->stats();

  McmcResult result;
  result.best_ln_likelihood = ln_lik_;
  auto take_sample = [&] {
    result.samples.push_back(
        McmcSample{generation_, ln_lik_, engine_->tree().total_length(),
                   engine_->model_params().gamma_shape});
    if (opts_.collect_trees) {
      result.sampled_trees.push_back(engine_->tree().to_newick());
    }
  };
  take_sample();

  for (std::uint64_t g = 0; g < generations; ++g) {
    step();
    result.best_ln_likelihood = std::max(result.best_ln_likelihood, ln_lik_);
    if (opts_.sample_every != 0 && generation_ % opts_.sample_every == 0) {
      take_sample();
    }
  }

  result.proposals = stats_;
  result.final_ln_likelihood = ln_lik_;
  result.final_tree_newick = engine_->tree().to_newick();
  result.wall_seconds = wall.seconds();

  const core::EngineStats after = engine_->stats();
  core::EngineStats delta = after;
  delta.down_calls -= before.down_calls;
  delta.root_calls -= before.root_calls;
  delta.scale_calls -= before.scale_calls;
  delta.reduce_calls -= before.reduce_calls;
  delta.tm_builds -= before.tm_builds;
  delta.pattern_iterations -= before.pattern_iterations;
  delta.plf_seconds -= before.plf_seconds;
  delta.serial_seconds -= before.serial_seconds;
  result.engine_stats = delta;
  result.plf_wall_seconds = delta.plf_seconds;
  result.serial_wall_seconds = result.wall_seconds - delta.plf_seconds;
  return result;
}

void McmcChain::save_state(util::BinaryWriter& w) const {
  w.section("CHAI");
  w.u64(generation_);
  w.f64(ln_lik_);
  w.f64(opts_.likelihood_power);
  const Rng::State rs = rng_.state();
  w.u64_array(rs.s.data(), rs.s.size());
  w.u8(rs.have_spare_normal ? 1 : 0);
  w.f64(rs.spare_normal);
  w.u64(stats_.size());
  for (const auto& [name, st] : stats_) {
    w.str(name);
    w.u64(st.proposed);
    w.u64(st.accepted);
  }
}

void McmcChain::restore_state(util::BinaryReader& r) {
  r.section("CHAI");
  generation_ = r.u64();
  ln_lik_ = r.f64();
  opts_.likelihood_power = r.f64();
  Rng::State rs;
  const std::vector<std::uint64_t> s = r.u64_array();
  PLF_CHECK(s.size() == rs.s.size(), "restore_state: bad rng state size");
  std::copy(s.begin(), s.end(), rs.s.begin());
  rs.have_spare_normal = r.u8() != 0;
  rs.spare_normal = r.f64();
  rng_.set_state(rs);
  stats_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = r.str();
    ProposalStats st;
    st.proposed = r.u64();
    st.accepted = r.u64();
    stats_[name] = st;
  }
}

void publish_proposal_gauges(
    obs::MetricsRegistry& registry,
    const std::map<std::string, ProposalStats>& stats) {
  for (const auto& [name, st] : stats) {
    registry.set_gauge(
        registry.gauge(std::string(obs::kGaugeMcmcProposedPrefix) + name),
        static_cast<double>(st.proposed));
    registry.set_gauge(
        registry.gauge(std::string(obs::kGaugeMcmcAcceptedPrefix) + name),
        static_cast<double>(st.accepted));
    registry.set_gauge(
        registry.gauge(std::string(obs::kGaugeMcmcAcceptRatePrefix) + name),
        st.acceptance_rate());
  }
}

arch::PlfWorkload workload_from_run(const McmcResult& result, std::size_t m,
                                    std::size_t K, std::size_t taxa,
                                    double baseline_freq_hz) {
  arch::PlfWorkload w;
  w.m = m;
  w.K = K;
  w.taxa = taxa;
  w.down_calls = result.engine_stats.down_calls;
  w.root_calls = result.engine_stats.root_calls;
  w.scale_calls = result.engine_stats.scale_calls;
  w.reduce_calls = result.engine_stats.reduce_calls;
  w.tm_builds = result.engine_stats.tm_builds;
  // The measured serial wall time, expressed in baseline-core cycles (the
  // abstract unit the arch models consume). tm rebuilds are modeled
  // separately, so subtract nothing here — the engine's measured serial
  // time already excludes kernels only.
  w.serial_cycles = result.serial_wall_seconds * baseline_freq_hz;
  return w;
}

}  // namespace plf::mcmc
