// Metropolis-Hastings chain over trees and model parameters — the MrBayes
// role in this reproduction.
//
// The chain is the *application* wrapped around the PLF: per generation it
// draws one move, evaluates the proposal's likelihood through the PlfEngine
// (which recomputes only the dirtied conditional-likelihood vectors on
// whatever backend the engine was built with), and accepts or rejects.
// Reject is a pointer flip (the engine's touch/flip scheme), exactly like
// MrBayes. Fixed seeds + fixed generation counts give the paper's "fair
// comparison" reproducibility (§4).
//
// Besides inference, the chain reports the measurements the architecture
// study needs: kernel call counts (the PLF workload) and the serial-vs-PLF
// wall-time split (Fig. 12's PLF/Remaining decomposition).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arch/workload.hpp"
#include "core/engine.hpp"
#include "mcmc/proposals.hpp"
#include "util/rng.hpp"

namespace plf::util {
class BinaryWriter;
class BinaryReader;
}  // namespace plf::util

namespace plf::obs {
class MetricsRegistry;
}  // namespace plf::obs

namespace plf::mcmc {

struct McmcOptions {
  std::uint64_t seed = 1;
  std::uint64_t sample_every = 100;
  /// Record the Newick string of every sampled tree (for consensus
  /// summaries) — off by default to keep long runs lean.
  bool collect_trees = false;
  /// Tempering exponent beta on the LIKELIHOOD: the chain targets
  /// prior(x) * L(x)^beta. 1.0 is the ordinary posterior; Metropolis
  /// coupling (mcmc/coupled.hpp) runs heated chains with beta < 1.
  double likelihood_power = 1.0;
  ProposalTuning tuning;
  /// Relative move probabilities (MrBayes-like defaults: branch lengths
  /// dominate, topology next, model parameters occasional).
  double w_branch = 5.0;
  double w_nni = 3.0;
  double w_shape = 0.7;
  double w_rates = 0.7;
  double w_pi = 0.6;
  /// Weight of the +I slide; 0 (default) keeps the model family fixed at
  /// whatever p_invariant the engine was built with.
  double w_pinv = 0.0;
  /// Weight of the eSPR topology move (default off: NNI-only move sets keep
  /// historical trajectories/golden tests stable; enable for better mixing).
  double w_spr = 0.0;
};

struct ProposalStats {
  std::uint64_t proposed = 0;
  std::uint64_t accepted = 0;
  double acceptance_rate() const {
    return proposed == 0 ? 0.0
                         : static_cast<double>(accepted) /
                               static_cast<double>(proposed);
  }
};

struct McmcSample {
  std::uint64_t generation;
  double ln_likelihood;
  double tree_length;
  double gamma_shape;
};

struct McmcResult {
  std::vector<McmcSample> samples;
  std::vector<std::string> sampled_trees;  ///< when options.collect_trees
  std::map<std::string, ProposalStats> proposals;
  double final_ln_likelihood = 0.0;
  double best_ln_likelihood = 0.0;
  std::string final_tree_newick;
  core::EngineStats engine_stats;   ///< PLF call counts for this run
  double wall_seconds = 0.0;        ///< total run wall time
  double plf_wall_seconds = 0.0;    ///< wall time inside PLF kernels
  double serial_wall_seconds = 0.0; ///< wall_seconds - plf_wall_seconds

  std::uint64_t total_proposed() const;
  std::uint64_t total_accepted() const;
};

class McmcChain {
 public:
  McmcChain(core::PlfEngine& engine, const McmcOptions& options = McmcOptions{});

  /// Execute one generation (one proposal + MH decision). Returns true when
  /// the proposal was accepted.
  bool step();

  /// Run `generations` steps, collecting samples every opts.sample_every.
  McmcResult run(std::uint64_t generations);

  double ln_likelihood() const { return ln_lik_; }
  std::uint64_t generation() const { return generation_; }
  double likelihood_power() const { return opts_.likelihood_power; }
  /// Used by Metropolis coupling when two chains swap heats.
  void set_likelihood_power(double beta) { opts_.likelihood_power = beta; }
  core::PlfEngine& engine() { return *engine_; }
  const std::map<std::string, ProposalStats>& proposal_stats() const {
    return stats_;
  }

  // --- checkpoint/restore (docs/SHARDING.md) ---
  /// Serialize the chain's own state: generation count, RNG stream (with its
  /// cached spare normal — part of the stream), cached lnL, tempering power,
  /// and proposal statistics. The ENGINE is serialized separately
  /// (core::PlfEngine::save_state) by whoever owns the chain/engine pair.
  void save_state(util::BinaryWriter& w) const;
  /// Inverse of save_state, into a chain built with the same McmcOptions
  /// (move weights and tuning are configuration, not state).
  void restore_state(util::BinaryReader& r);

 private:
  const Proposal& draw_proposal(Rng& rng) const;

  core::PlfEngine* engine_;
  McmcOptions opts_;
  Rng rng_;
  std::vector<std::unique_ptr<Proposal>> proposals_;
  std::vector<double> weights_;
  std::map<std::string, ProposalStats> stats_;
  std::uint64_t generation_ = 0;
  double ln_lik_ = 0.0;
};

/// Publish per-proposal-type proposed/accepted counters and acceptance
/// rates as "mcmc.*" gauges — the obs/names.hpp prefix constants completed
/// with each proposal's registered name ("mcmc.accept_rate.nni", ...). Used
/// by the telemetry tick (live monitoring) and after a finished run; pass
/// McmcResult::proposals or an aggregate over coupled chains.
void publish_proposal_gauges(obs::MetricsRegistry& registry,
                             const std::map<std::string, ProposalStats>& stats);

/// Bridge into the architecture study: convert a finished run's engine
/// statistics into the PlfWorkload the arch models consume.
arch::PlfWorkload workload_from_run(const McmcResult& result, std::size_t m,
                                    std::size_t K, std::size_t taxa,
                                    double baseline_freq_hz = 3.0e9);

}  // namespace plf::mcmc
