// Streaming convergence diagnostics — the online counterparts of
// mcmc/diagnostics.hpp, computable WHILE the chain runs instead of after it.
//
// The post-hoc estimators (Geyer ESS, split frequencies) need the whole
// trace in memory and O(n^2) work; a multi-hour MC^3 run can't afford either
// on every telemetry tick. This header provides the standard bounded-memory
// replacements from the production-MCMC literature:
//
//   - StreamingEss: effective sample size by the method of batch means.
//     Samples are grouped into B batches whose size doubles whenever the
//     batch table fills, so memory stays O(B) forever while the batch length
//     grows with n (the consistency requirement: batch length >> the
//     autocorrelation time). ESS = n * s^2 / (b * Var(batch means)), the
//     classic MCMC-variance estimator inverted. Agreement with the Geyer
//     estimator in summarize_trace is validated by the goldens in
//     tests/online_diagnostics_test.cpp (documented tolerance: a factor of
//     2 on AR(1) traces once both see >= 64 batches — batch means and
//     initial-sequence estimators are both noisy, but they agree on the
//     order of magnitude, which is what a convergence monitor needs).
//
//   - split_rhat: the Gelman-Rubin potential scale reduction factor over M
//     independent chains, each split in half (so one drifting chain cannot
//     hide inside its own average). Values near 1.0 indicate the chains
//     agree; practice stops trusting runs with R-hat > 1.01..1.1. Feed it
//     one series per chain/instance (the PR-9 multi-instance runtime) or the
//     two halves of a single chain's batch means (StreamingEss::split_rhat).
//
// Everything here is plain single-threaded value semantics: the coupler owns
// the estimators and updates them from its own control thread; cross-thread
// publication goes through the metrics registry / telemetry exporter, never
// through these objects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace plf::util {
class BinaryWriter;
class BinaryReader;
}  // namespace plf::util

namespace plf::mcmc {

/// Bounded-memory streaming effective-sample-size estimator (batch means
/// with doubling batch length). add() is O(1) amortized; memory is O(max_batches).
class StreamingEss {
 public:
  /// `max_batches` caps the batch table (>= 4; default 64 — the standard
  /// sqrt-ish compromise: enough batches for a stable variance, short enough
  /// that batch length grows quickly past the autocorrelation time).
  explicit StreamingEss(std::size_t max_batches = 64);

  void add(double x);

  /// Samples seen so far.
  std::uint64_t count() const { return overall_.count(); }
  /// Mean / sample variance over ALL samples (Welford, exact).
  double mean() const { return overall_.mean(); }
  double variance() const { return overall_.variance(); }

  /// Effective sample size estimate. Defined for every state:
  ///   - fewer than 2 completed batches or zero overall variance: ESS = n
  ///     (the iid/constant-series convention summarize_trace also uses);
  ///   - otherwise n * s^2 / (b * Var(batch means)), clamped to [1, n].
  double ess() const;
  /// Integrated autocorrelation time implied by ess(): n / ESS, >= 1.
  double autocorrelation_time() const;

  /// Split-R-hat over this single chain's batch means (first half vs second
  /// half — detects a still-drifting chain). NaN until >= 4 completed
  /// batches; 1.0 for a constant series.
  double split_rhat() const;

  /// Completed batch means, oldest first (for cross-chain R-hat pooling).
  const std::vector<double>& batch_means() const { return batches_; }
  /// Samples per completed batch (doubles as the run grows).
  std::uint64_t batch_length() const { return batch_len_; }

  // --- checkpoint/restore (docs/SHARDING.md) ---
  /// Serialize the exact accumulator state ("ESSS" section): telemetry
  /// emitted after --resume must continue the uninterrupted run's estimator
  /// trajectory bit-for-bit.
  void save_state(util::BinaryWriter& w) const;
  void restore_state(util::BinaryReader& r);

 private:
  std::size_t max_batches_;
  OnlineStats overall_;
  std::vector<double> batches_;   ///< completed batch means
  std::uint64_t batch_len_ = 1;   ///< current batch length (doubles on fill)
  double cur_sum_ = 0.0;          ///< running sum of the open batch
  std::uint64_t cur_n_ = 0;       ///< samples in the open batch
};

/// Gelman-Rubin split-R-hat (PSRF) over M >= 1 series — one per independent
/// chain or instance. Each series is split in half, halves become separate
/// sequences, all sequences are truncated to the shortest half so the
/// between/within decomposition is balanced. Returns:
///   - NaN when there are no series, or the common half-length is < 2
///     (undefined — callers render "n/a", they don't propagate it);
///   - 1.0 when the pooled within-sequence variance is zero and the
///     sequence means agree (constant chains are trivially converged);
///   - +infinity when within-variance is zero but the means differ
///     (frozen chains stuck at different values never converge).
double split_rhat(const std::vector<std::vector<double>>& series);

}  // namespace plf::mcmc
