#include "mcmc/online_diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace plf::mcmc {

namespace {

double nan_value() { return std::numeric_limits<double>::quiet_NaN(); }

/// Sample variance (n-1) of a [first, last) range around its own mean.
double sample_variance(const std::vector<double>& v, std::size_t first,
                       std::size_t last, double* mean_out) {
  const std::size_t n = last - first;
  double mean = 0.0;
  for (std::size_t i = first; i < last; ++i) mean += v[i];
  mean /= static_cast<double>(n);
  double ss = 0.0;
  for (std::size_t i = first; i < last; ++i) {
    ss += (v[i] - mean) * (v[i] - mean);
  }
  if (mean_out != nullptr) *mean_out = mean;
  return n < 2 ? 0.0 : ss / static_cast<double>(n - 1);
}

}  // namespace

StreamingEss::StreamingEss(std::size_t max_batches)
    : max_batches_(max_batches) {
  PLF_CHECK(max_batches_ >= 4, "StreamingEss needs at least 4 batches");
  // Keep pair-collapse exact: an even table halves to an integer count.
  PLF_CHECK(max_batches_ % 2 == 0, "StreamingEss batch cap must be even");
  batches_.reserve(max_batches_);
}

void StreamingEss::add(double x) {
  overall_.add(x);
  cur_sum_ += x;
  if (++cur_n_ < batch_len_) return;
  batches_.push_back(cur_sum_ / static_cast<double>(batch_len_));
  cur_sum_ = 0.0;
  cur_n_ = 0;
  if (batches_.size() == max_batches_) {
    // Table full: double the batch length and merge adjacent pairs (each
    // pair of equal-length batches averages exactly into one batch of the
    // new length).
    for (std::size_t i = 0; i < batches_.size() / 2; ++i) {
      batches_[i] = 0.5 * (batches_[2 * i] + batches_[2 * i + 1]);
    }
    batches_.resize(batches_.size() / 2);
    batch_len_ *= 2;
  }
}

double StreamingEss::ess() const {
  const double n = static_cast<double>(overall_.count());
  const double s2 = overall_.variance();
  if (batches_.size() < 2 || s2 <= 0.0) return n;
  const double var_bm = sample_variance(batches_, 0, batches_.size(), nullptr);
  if (var_bm <= 0.0) return n;
  // tau = b * Var(batch means) / s^2; ESS = n / max(tau, 1), floored at 1.
  const double tau = static_cast<double>(batch_len_) * var_bm / s2;
  return std::clamp(n / std::max(tau, 1.0), 1.0, n);
}

double StreamingEss::autocorrelation_time() const {
  const std::uint64_t n = overall_.count();
  return n == 0 ? 1.0 : static_cast<double>(n) / ess();
}

double StreamingEss::split_rhat() const {
  if (batches_.size() < 4) return nan_value();
  const std::size_t half = batches_.size() / 2;
  std::vector<std::vector<double>> halves(2);
  halves[0].assign(batches_.begin(),
                   batches_.begin() + static_cast<std::ptrdiff_t>(half));
  halves[1].assign(batches_.begin() + static_cast<std::ptrdiff_t>(half),
                   batches_.end());
  return mcmc::split_rhat(halves);
}

void StreamingEss::save_state(util::BinaryWriter& w) const {
  w.section("ESSS");
  const OnlineStats::State s = overall_.state();
  w.u64(s.n);
  w.f64(s.mean);
  w.f64(s.m2);
  w.f64(s.min);
  w.f64(s.max);
  w.u64(max_batches_);
  w.u64(batch_len_);
  w.f64(cur_sum_);
  w.u64(cur_n_);
  w.f64_array(batches_.data(), batches_.size());
}

void StreamingEss::restore_state(util::BinaryReader& r) {
  r.section("ESSS");
  OnlineStats::State s;
  s.n = r.u64();
  s.mean = r.f64();
  s.m2 = r.f64();
  s.min = r.f64();
  s.max = r.f64();
  overall_.set_state(s);
  const std::uint64_t cap = r.u64();
  PLF_CHECK(cap == max_batches_,
            "checkpoint: StreamingEss batch cap does not match this build");
  batch_len_ = r.u64();
  cur_sum_ = r.f64();
  cur_n_ = r.u64();
  batches_ = r.f64_array();
  PLF_CHECK(batches_.size() < max_batches_,
            "checkpoint: StreamingEss batch table overflow");
}

double split_rhat(const std::vector<std::vector<double>>& series) {
  // Split every series in half; all halves truncate to the common length.
  std::size_t half_len = std::numeric_limits<std::size_t>::max();
  for (const auto& s : series) half_len = std::min(half_len, s.size() / 2);
  if (series.empty() || half_len < 2) return nan_value();

  std::vector<double> seq_means;
  double within = 0.0;
  for (const auto& s : series) {
    for (std::size_t h = 0; h < 2; ++h) {
      const std::size_t first = h * half_len;
      double mean = 0.0;
      within += sample_variance(s, first, first + half_len, &mean);
      seq_means.push_back(mean);
    }
  }
  const double m = static_cast<double>(seq_means.size());
  const double n = static_cast<double>(half_len);
  within /= m;
  // Between-sequence variance: n * Var(sequence means).
  const double between =
      n * sample_variance(seq_means, 0, seq_means.size(), nullptr);
  if (within <= 0.0) {
    return between <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  const double var_plus = (n - 1.0) / n * within + between / n;
  return std::sqrt(var_plus / within);
}

}  // namespace plf::mcmc
