// MCMC proposal distributions (MrBayes-style moves).
//
// Each proposal mutates the PlfEngine inside an open proposal scope and
// returns the log of (prior ratio x Hastings ratio); the chain adds the
// likelihood ratio and applies the Metropolis-Hastings test. The moves are
// the classic MrBayes set for GTR+Γ on unrooted trees:
//   * branch-length multiplier
//   * NNI topology move
//   * Γ-shape multiplier
//   * Dirichlet redraw of GTR exchangeabilities
//   * Dirichlet redraw of stationary frequencies
#pragma once

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "util/rng.hpp"

namespace plf::mcmc {

/// Tuning parameters and priors for the standard move set.
struct ProposalTuning {
  double branch_lambda = 0.94;       ///< multiplier window 2*ln(1.6)
  double shape_lambda = 0.81;        ///< multiplier window 2*ln(1.5)
  double pinv_window = 0.1;          ///< +I slide half-width
  double max_pinv = 0.95;            ///< upper bound of the +I prior support
  double rates_concentration = 300.0;   ///< Dirichlet proposal tightness
  double pi_concentration = 300.0;
  double branch_exp_prior_rate = 10.0;  ///< Exp prior on branch lengths
  double shape_exp_prior_rate = 1.0;    ///< Exp prior on the Γ shape
  double min_branch_length = 1e-8;
  double max_branch_length = 100.0;
  double min_shape = 1e-3;
  double max_shape = 200.0;
};

/// log pdf of Dirichlet(alpha) at x (both length-n, x on the simplex).
double dirichlet_log_pdf(const std::vector<double>& alpha,
                         const std::vector<double>& x);

/// Abstract move. `propose` mutates the engine (which must be inside
/// begin_proposal()) and returns log(prior ratio * Hastings ratio), or
/// -infinity to force rejection (out-of-bounds proposals).
class Proposal {
 public:
  virtual ~Proposal() = default;
  virtual const char* name() const = 0;
  virtual double propose(core::PlfEngine& engine, Rng& rng) const = 0;
};

class BranchLengthMultiplier final : public Proposal {
 public:
  explicit BranchLengthMultiplier(const ProposalTuning& t) : t_(t) {}
  const char* name() const override { return "branch-multiplier"; }
  double propose(core::PlfEngine& engine, Rng& rng) const override;

 private:
  ProposalTuning t_;
};

class NniMove final : public Proposal {
 public:
  explicit NniMove(const ProposalTuning& t) : t_(t) {}
  const char* name() const override { return "nni"; }
  double propose(core::PlfEngine& engine, Rng& rng) const override;

 private:
  ProposalTuning t_;
};

class GammaShapeMultiplier final : public Proposal {
 public:
  explicit GammaShapeMultiplier(const ProposalTuning& t) : t_(t) {}
  const char* name() const override { return "gamma-shape"; }
  double propose(core::PlfEngine& engine, Rng& rng) const override;

 private:
  ProposalTuning t_;
};

class GtrRatesDirichlet final : public Proposal {
 public:
  explicit GtrRatesDirichlet(const ProposalTuning& t) : t_(t) {}
  const char* name() const override { return "gtr-rates"; }
  double propose(core::PlfEngine& engine, Rng& rng) const override;

 private:
  ProposalTuning t_;
};

/// Reflective uniform slide on the proportion of invariable sites (+I),
/// with a Uniform(0, max_pinv) prior. Only meaningful for engines whose
/// model was built with p_invariant > 0 (the model family is fixed).
class PinvSlide final : public Proposal {
 public:
  explicit PinvSlide(const ProposalTuning& t) : t_(t) {}
  const char* name() const override { return "p-invariant"; }
  double propose(core::PlfEngine& engine, Rng& rng) const override;

 private:
  ProposalTuning t_;
};

/// Subtree pruning and regrafting with a uniform split of the target
/// branch. The prunable-subtree and valid-target counts are symmetric
/// between the two states, so the Hastings ratio reduces to the branch-split
/// densities: log(L_target / (L_u + L_w)).
class SprMove final : public Proposal {
 public:
  explicit SprMove(const ProposalTuning& t) : t_(t) {}
  const char* name() const override { return "espr"; }
  double propose(core::PlfEngine& engine, Rng& rng) const override;

 private:
  ProposalTuning t_;
};

class BaseFrequenciesDirichlet final : public Proposal {
 public:
  explicit BaseFrequenciesDirichlet(const ProposalTuning& t) : t_(t) {}
  const char* name() const override { return "base-frequencies"; }
  double propose(core::PlfEngine& engine, Rng& rng) const override;

 private:
  ProposalTuning t_;
};

}  // namespace plf::mcmc
