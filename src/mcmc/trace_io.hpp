// MrBayes-style run output files:
//   .p — tab-separated parameter trace (generation, lnL, tree length, shape,
//        p_invariant), the file Tracer-style tools consume;
//   .t — NEXUS TREES block with a TRANSLATE table and one TREE per sample,
//        the file `sumt`-style consensus tools consume.
// Both round-trip through this library (read_params_trace / parse_nexus).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "mcmc/chain.hpp"

namespace plf::mcmc {

/// One row of a .p file.
struct TraceRow {
  std::uint64_t generation = 0;
  double ln_likelihood = 0.0;
  double tree_length = 0.0;
  double gamma_shape = 0.0;
};

/// Write the parameter trace of a finished run. `run_id` lands in the
/// header comment line, as MrBayes does.
void write_params_trace(std::ostream& os, const McmcResult& result,
                        const std::string& run_id = "plf-repro");

/// Parse a .p file back into rows. Throws plf::ParseError on malformed input.
std::vector<TraceRow> read_params_trace(const std::string& text);

/// Write the tree trace (requires options.collect_trees during the run).
/// Taxon order comes from the first sampled tree.
void write_tree_trace(std::ostream& os, const McmcResult& result);

}  // namespace plf::mcmc
