#include "mcmc/trace_io.hpp"

#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "phylo/tree.hpp"
#include "util/error.hpp"

namespace plf::mcmc {

void write_params_trace(std::ostream& os, const McmcResult& result,
                        const std::string& run_id) {
  os << "[ID: " << run_id << "]\n";
  os << "Gen\tLnL\tTL\talpha\n";
  os << std::setprecision(10);
  for (const auto& s : result.samples) {
    os << s.generation << '\t' << s.ln_likelihood << '\t' << s.tree_length
       << '\t' << s.gamma_shape << '\n';
  }
}

std::vector<TraceRow> read_params_trace(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  // Header comment.
  if (!std::getline(in, line) || line.empty() || line[0] != '[') {
    throw ParseError(".p file must start with an [ID: ...] line");
  }
  // Column header.
  if (!std::getline(in, line) || line.substr(0, 3) != "Gen") {
    throw ParseError(".p file missing the Gen header line");
  }
  std::vector<TraceRow> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceRow r;
    if (!(ls >> r.generation >> r.ln_likelihood >> r.tree_length >>
          r.gamma_shape)) {
      throw ParseError(".p file: malformed row: " + line);
    }
    rows.push_back(r);
  }
  return rows;
}

void write_tree_trace(std::ostream& os, const McmcResult& result) {
  PLF_CHECK(!result.sampled_trees.empty(),
            "write_tree_trace: run was not configured with collect_trees");
  PLF_CHECK(result.sampled_trees.size() == result.samples.size(),
            "write_tree_trace: sample/tree count mismatch");

  // Taxon order from the first sampled tree.
  const phylo::Tree first = phylo::Tree::from_newick(result.sampled_trees[0]);
  const auto& names = first.taxon_names();

  os << "#NEXUS\n[Tree trace written by plf-repro]\nBEGIN TREES;\n";
  os << "  TRANSLATE\n";
  for (std::size_t t = 0; t < names.size(); ++t) {
    os << "    " << (t + 1) << ' ' << names[t]
       << (t + 1 < names.size() ? "," : ";") << '\n';
  }
  for (std::size_t i = 0; i < result.sampled_trees.size(); ++i) {
    // Re-express leaf names as translate indices.
    const phylo::Tree tree =
        phylo::Tree::from_newick(result.sampled_trees[i], names);
    std::vector<std::string> numbered(names.size());
    for (std::size_t t = 0; t < names.size(); ++t) {
      numbered[t] = std::to_string(t + 1);
    }
    // Rebuild with numeric labels by swapping the name table.
    std::string newick = tree.to_newick();
    // Token-wise replace names with their indices (names may share prefixes,
    // so match full label tokens only).
    std::map<std::string, std::string> table;
    for (std::size_t t = 0; t < names.size(); ++t) {
      table[names[t]] = numbered[t];
    }
    std::string out;
    std::string label;
    bool in_length = false;
    auto flush = [&] {
      if (label.empty()) return;
      const auto it = table.find(label);
      out += (it != table.end()) ? it->second : label;
      label.clear();
    };
    for (char c : newick) {
      if (c == '(' || c == ')' || c == ',' || c == ';') {
        flush();
        in_length = false;
        out += c;
      } else if (c == ':') {
        flush();
        in_length = true;
        out += c;
      } else if (in_length) {
        out += c;
      } else {
        label += c;
      }
    }
    flush();
    os << "  TREE gen." << result.samples[i].generation << " = [&U] " << out
       << '\n';
  }
  os << "END;\n";
}

}  // namespace plf::mcmc
