#include "mcmc/consensus.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <iomanip>

#include "util/error.hpp"

namespace plf::mcmc {

namespace {

std::size_t popcount(const Split& s) {
  std::size_t n = 0;
  for (auto w : s) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool contains(const Split& outer, const Split& inner) {
  for (std::size_t i = 0; i < outer.size(); ++i) {
    if ((outer[i] & inner[i]) != inner[i]) return false;
  }
  return true;
}

bool test_bit(const Split& s, std::size_t i) {
  return (s[i / 64] >> (i % 64)) & 1u;
}

void set_bit(Split& s, std::size_t i) { s[i / 64] |= std::uint64_t{1} << (i % 64); }

std::vector<int> members(const Split& s, std::size_t n_taxa) {
  std::vector<int> out;
  for (std::size_t i = 0; i < n_taxa; ++i) {
    if (test_bit(s, i)) out.push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace

void TreeSampleSummary::add_tree(const phylo::Tree& tree) {
  if (names_.empty()) {
    names_ = tree.taxon_names();
    words_ = (names_.size() + 63) / 64;
  }
  PLF_CHECK(tree.n_taxa() == names_.size(),
            "consensus: tree has a different taxon count");

  // Map this tree's taxon indices into the canonical name order.
  std::vector<std::size_t> canon(tree.n_taxa());
  for (std::size_t t = 0; t < tree.n_taxa(); ++t) {
    const auto it =
        std::find(names_.begin(), names_.end(), tree.taxon_name(static_cast<int>(t)));
    PLF_CHECK(it != names_.end(),
              "consensus: tree taxon not in the summary's taxon set: " +
                  tree.taxon_name(static_cast<int>(t)));
    canon[t] = static_cast<std::size_t>(it - names_.begin());
  }

  // Accumulate per-node taxon bitsets (canonical space), children first.
  std::vector<Split> below(tree.n_nodes(), Split(words_, 0));
  for (std::size_t id = 0; id < tree.n_nodes(); ++id) {
    const auto& n = tree.node(static_cast<int>(id));
    if (n.is_leaf()) {
      set_bit(below[id], canon[static_cast<std::size_t>(n.taxon)]);
    }
  }

  std::vector<Split> splits;
  for (int id : tree.postorder_internals()) {
    const auto& n = tree.node(id);
    for (std::size_t w = 0; w < words_; ++w) {
      below[static_cast<std::size_t>(id)][w] =
          below[static_cast<std::size_t>(n.left)][w] |
          below[static_cast<std::size_t>(n.right)][w];
    }
    if (id == tree.root()) continue;  // trivial full split
    Split key = below[static_cast<std::size_t>(id)];
    if (key[0] & 1u) {  // canonical side excludes canonical taxon 0
      for (auto& w : key) w = ~w;
      const std::size_t rem = names_.size() % 64;
      if (rem != 0) key.back() &= (std::uint64_t{1} << rem) - 1;
    }
    if (popcount(key) >= 2) {  // nontrivial splits only
      splits.push_back(std::move(key));
    }
  }

  for (const auto& s : splits) ++counts_[s];
  std::sort(splits.begin(), splits.end());
  ++topology_counts_[splits];
  ++n_trees_;
}

void TreeSampleSummary::add_newick(const std::string& newick) {
  if (names_.empty()) {
    add_tree(phylo::Tree::from_newick(newick));
  } else {
    add_tree(phylo::Tree::from_newick(newick, names_));
  }
}

std::vector<SplitFrequency> TreeSampleSummary::split_frequencies() const {
  std::vector<SplitFrequency> out;
  out.reserve(counts_.size());
  for (const auto& [split, count] : counts_) {
    SplitFrequency f;
    f.split = split;
    f.taxa = members(split, names_.size());
    f.count = count;
    f.frequency =
        n_trees_ == 0 ? 0.0
                      : static_cast<double>(count) / static_cast<double>(n_trees_);
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(),
            [](const SplitFrequency& a, const SplitFrequency& b) {
              if (a.count != b.count) return a.count > b.count;
              if (a.taxa.size() != b.taxa.size())
                return a.taxa.size() < b.taxa.size();
              return a.split < b.split;
            });
  return out;
}

std::string TreeSampleSummary::majority_rule_newick() const {
  PLF_CHECK(n_trees_ > 0, "consensus: no trees added");

  // Majority splits are pairwise compatible and, excluding taxon 0, nest as
  // clades.
  std::vector<Split> clades;
  for (const auto& [split, count] : counts_) {
    if (2 * count > n_trees_) clades.push_back(split);
  }
  // Small-to-large so parents come after children in the scan below.
  std::sort(clades.begin(), clades.end(), [](const Split& a, const Split& b) {
    const std::size_t pa = popcount(a), pb = popcount(b);
    if (pa != pb) return pa < pb;
    return a < b;
  });

  const std::size_t n = names_.size();
  const int kRoot = -1;
  // parent[i]: index into `clades` of the smallest clade strictly
  // containing clade i, or kRoot.
  std::vector<int> parent(clades.size(), kRoot);
  for (std::size_t i = 0; i < clades.size(); ++i) {
    for (std::size_t j = i + 1; j < clades.size(); ++j) {
      if (contains(clades[j], clades[i])) {
        parent[i] = static_cast<int>(j);
        break;  // smallest container: first hit in size order
      }
    }
  }
  // Each taxon (except canonical 0) attaches to the smallest clade holding it.
  std::vector<int> taxon_parent(n, kRoot);
  for (std::size_t t = 1; t < n; ++t) {
    for (std::size_t i = 0; i < clades.size(); ++i) {
      if (test_bit(clades[i], t)) {
        taxon_parent[t] = static_cast<int>(i);
        break;
      }
    }
  }

  std::vector<std::vector<int>> clade_children(clades.size());
  std::vector<int> top_clades;
  for (std::size_t i = 0; i < clades.size(); ++i) {
    if (parent[i] == kRoot) {
      top_clades.push_back(static_cast<int>(i));
    } else {
      clade_children[static_cast<std::size_t>(parent[i])].push_back(
          static_cast<int>(i));
    }
  }
  std::vector<std::vector<int>> clade_taxa(clades.size());
  std::vector<int> top_taxa;
  for (std::size_t t = 1; t < n; ++t) {
    if (taxon_parent[t] == kRoot) {
      top_taxa.push_back(static_cast<int>(t));
    } else {
      clade_taxa[static_cast<std::size_t>(taxon_parent[t])].push_back(
          static_cast<int>(t));
    }
  }

  // Render: internal labels carry the split's posterior frequency.
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  auto render_clade = [&](auto&& self, int ci) -> void {
    os << '(';
    bool first = true;
    for (int t : clade_taxa[static_cast<std::size_t>(ci)]) {
      if (!first) os << ',';
      first = false;
      os << names_[static_cast<std::size_t>(t)];
    }
    for (int child : clade_children[static_cast<std::size_t>(ci)]) {
      if (!first) os << ',';
      first = false;
      self(self, child);
    }
    os << ')'
       << static_cast<double>(counts_.at(clades[static_cast<std::size_t>(ci)])) /
              static_cast<double>(n_trees_);
  };

  os << '(' << names_[0];
  for (int t : top_taxa) os << ',' << names_[static_cast<std::size_t>(t)];
  for (int ci : top_clades) {
    os << ',';
    render_clade(render_clade, ci);
  }
  os << ");";
  return os.str();
}

double TreeSampleSummary::topology_frequency(const phylo::Tree& tree) const {
  if (n_trees_ == 0) return 0.0;
  TreeSampleSummary probe;
  probe.names_ = names_;
  probe.words_ = words_;
  probe.add_tree(tree);
  PLF_CHECK(probe.topology_counts_.size() == 1, "internal consensus error");
  const auto& key = probe.topology_counts_.begin()->first;
  const auto it = topology_counts_.find(key);
  if (it == topology_counts_.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(n_trees_);
}

}  // namespace plf::mcmc
