// Persistent worker pool with OpenMP-like parallel-for semantics.
//
// The paper parallelizes the outermost PLF loop with
// `#pragma omp parallel for` (§3.2) and observes that the spawn/sync cost of
// each parallel region is what limits scalability as the number of PLF calls
// grows (§4.1.1). We reproduce that structure: one pool is created up front,
// each `parallel_for` is a "parallel region" whose entry/exit are counted and
// timed so the multi-core timing model can be calibrated from measurements.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::par {

/// Inclusive-exclusive index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// How parallel_for distributes iterations.
enum class Schedule {
  kStatic,   ///< one contiguous block per worker (OpenMP schedule(static))
  kDynamic,  ///< workers pull fixed-size chunks from a shared counter
};

/// Counters describing pool activity since the last reset, used by the
/// architecture model calibration.
struct PoolStats {
  std::uint64_t regions = 0;        ///< number of parallel regions executed
  double region_overhead_s = 0.0;   ///< total wall time in spawn+join outside body
};

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute a region (workers + calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Run `body(range, thread_index)` over [begin, end) across all threads.
  /// Blocks until every iteration has completed (the implicit barrier at the
  /// end of an OpenMP parallel-for). Safe to call repeatedly; not reentrant.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(Range, std::size_t)>& body,
                    Schedule schedule = Schedule::kStatic,
                    std::size_t chunk = 0);

  /// Convenience element-wise form: body(index).
  void parallel_for_each(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body);

  PoolStats stats() const PLF_EXCLUDES(stats_m_);
  void reset_stats() PLF_EXCLUDES(stats_m_);

 private:
  struct Region;
  void worker_loop(std::size_t worker_index);
  void run_share(Region& region, std::size_t thread_index);

  std::vector<std::thread> workers_;  // immutable after construction

  // Region broadcast protocol: m_ guards the handshake state below; workers
  // sleep on cv_start_, the caller sleeps on cv_done_. The Region object
  // itself is stack-owned by parallel_for and immutable while broadcast
  // (except Region::error, guarded by its own mutex — see the .cpp).
  util::Mutex m_;
  util::CondVar cv_start_;
  util::CondVar cv_done_;
  Region* active_ PLF_GUARDED_BY(m_) = nullptr;  // currently broadcast region
  /// Bumped per region so workers wake exactly once.
  std::uint64_t epoch_ PLF_GUARDED_BY(m_) = 0;
  /// Workers still inside the active region.
  std::size_t remaining_ PLF_GUARDED_BY(m_) = 0;
  bool shutting_down_ PLF_GUARDED_BY(m_) = false;
  /// Rejects nested/concurrent parallel_for calls. An atomic, not m_-guarded
  /// state: the CAS must fail fast without blocking on a busy region.
  std::atomic<bool> in_region_{false};

  mutable util::Mutex stats_m_;
  PoolStats stats_ PLF_GUARDED_BY(stats_m_);
};

/// Pool shared by library components that do not manage their own
/// (constructed on first use with hardware concurrency).
ThreadPool& default_pool();

}  // namespace plf::par
