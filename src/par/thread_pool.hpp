// Persistent worker pool with OpenMP-like parallel-for semantics.
//
// The paper parallelizes the outermost PLF loop with
// `#pragma omp parallel for` (§3.2) and observes that the spawn/sync cost of
// each parallel region is what limits scalability as the number of PLF calls
// grows (§4.1.1). We reproduce that structure: one pool is created up front,
// each `parallel_for` is a "parallel region" whose entry/exit are counted and
// timed so the multi-core timing model can be calibrated from measurements.
//
// Multi-region sharing (docs/SHARDING.md): unlike an OpenMP team, the pool
// accepts parallel_for calls from MANY external threads concurrently. Each
// call enqueues a region; workers drain the region queue in FIFO order,
// claiming work units from the oldest region that still has unclaimed units,
// so independent engine instances can batch their plans through one shared
// pool without serializing on a single-region lock. A submitting thread only
// executes units of its own region (and then blocks until that region
// completes), which bounds its latency by its own work plus whatever the
// workers are already committed to. Nested calls — a region body invoking
// parallel_for on the same pool — remain rejected: they could deadlock the
// workers executing the outer region.
//
// Determinism: the static schedule always partitions [begin, end) into
// exactly `size()` contiguous blocks and passes the BLOCK index as the body's
// thread_index, no matter which thread claims which block. Reductions that
// combine per-thread_index partials in index order (ThreadedBackend::
// run_root_reduce) therefore stay bit-identical under region interleaving.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace plf::par {

/// Inclusive-exclusive index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

/// How parallel_for distributes iterations.
enum class Schedule {
  kStatic,   ///< one contiguous block per worker (OpenMP schedule(static))
  kDynamic,  ///< workers pull fixed-size chunks from a shared counter
};

/// Counters describing pool activity since the last reset, used by the
/// architecture model calibration.
struct PoolStats {
  std::uint64_t regions = 0;        ///< number of parallel regions executed
  double region_overhead_s = 0.0;   ///< total wall time in spawn+join outside body
};

class ThreadPool {
 public:
  /// Creates `threads` workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute a region (workers + calling thread).
  std::size_t size() const { return workers_.size() + 1; }

  /// Run `body(range, thread_index)` over [begin, end) across all threads.
  /// Blocks until every iteration has completed (the implicit barrier at the
  /// end of an OpenMP parallel-for). Safe to call repeatedly and from several
  /// threads at once (regions from concurrent callers interleave on the
  /// workers); NOT reentrant from inside a region body on the same pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(Range, std::size_t)>& body,
                    Schedule schedule = Schedule::kStatic,
                    std::size_t chunk = 0);

  /// Convenience element-wise form: body(index).
  void parallel_for_each(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body);

  PoolStats stats() const PLF_EXCLUDES(stats_m_);
  void reset_stats() PLF_EXCLUDES(stats_m_);

 private:
  struct Region;
  void worker_loop(std::size_t worker_index);
  /// Execute one claimed unit of `region` (block for static, chunk for
  /// dynamic) as claim slot `slot`. Exceptions are captured into the region.
  void run_unit(Region& region, std::size_t unit, std::size_t slot);
  /// Mark `region` finished if all units are claimed and none is running:
  /// unlinks it from the queue and wakes its submitter.
  void finish_if_complete(Region& region) PLF_REQUIRES(m_);
  /// Oldest enqueued region with unclaimed units, or nullptr.
  Region* claimable_region() PLF_REQUIRES(m_);

  std::vector<std::thread> workers_;  // immutable after construction

  // Region queue protocol: m_ guards the queue and every Region's claim state
  // (cursor / in-flight count / done flag). Workers sleep on cv_start_ until
  // some region has unclaimed units; each submitter sleeps on cv_done_ until
  // its own (stack-owned) region is done. A Region is unlinked under m_
  // before its submitter can return, so queue pointers never dangle.
  util::Mutex m_;
  util::CondVar cv_start_;
  util::CondVar cv_done_;
  std::vector<Region*> queue_ PLF_GUARDED_BY(m_);  // FIFO, oldest first
  bool shutting_down_ PLF_GUARDED_BY(m_) = false;

  mutable util::Mutex stats_m_;
  PoolStats stats_ PLF_GUARDED_BY(stats_m_);
};

/// Pool shared by library components that do not manage their own
/// (constructed on first use with hardware concurrency).
ThreadPool& default_pool();

}  // namespace plf::par
