// Sense-reversing spin barrier.
//
// Used by the calibration microbenchmarks to measure the raw cost of a
// cross-core synchronization point (the quantity the paper attributes the
// multi-core scalability differences to, §4.1.1) without the scheduling
// noise of a sleeping barrier.
#pragma once

#include <atomic>
#include <cstddef>

namespace plf::par {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties)
      : parties_(parties), remaining_(parties) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until all parties arrive. Reusable.
  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        // spin
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace plf::par
