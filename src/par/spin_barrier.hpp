// Sense-reversing spin barrier.
//
// Used by the calibration microbenchmarks to measure the raw cost of a
// cross-core synchronization point (the quantity the paper attributes the
// multi-core scalability differences to, §4.1.1) without the scheduling
// noise of a sleeping barrier.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/contracts.hpp"

namespace plf::par {

/// Hint to the CPU that we are in a spin-wait loop. On x86 this is the
/// `pause` instruction (reduces the memory-order-violation flush on loop
/// exit and yields pipeline resources to the sibling hyperthread); elsewhere
/// it is a no-op and the caller's periodic yield provides the backoff.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// TSA exemption (docs/STATIC_ANALYSIS.md): the barrier is a lock-free
/// protocol — no capability is ever held, so there is nothing for the
/// analysis to track. Correctness rests on the release/acquire pair on
/// `sense_` (releaser's store, spinners' loads) and the acq_rel decrement of
/// `remaining_`; those happens-before edges are validated dynamically by
/// par_stress_test under the tsan preset, which is the right tool for
/// atomics TSA cannot model.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties)
      : parties_(parties), remaining_(parties) {
    PLF_CHECK(parties >= 1, "SpinBarrier needs at least one party");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks (spinning) until all parties arrive. Reusable.
  void arrive_and_wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      // Spin with a CPU-relax hint, falling back to the OS scheduler once
      // the wait is clearly long (oversubscription, sanitizer slowdown, a
      // single-core host): a pure busy-wait would livelock when the last
      // arriving party cannot get a core to run on.
      std::size_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins < kSpinsBeforeYield) {
          cpu_relax();
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  /// Spins before each wait falls back to yielding. Low enough that a
  /// descheduled releaser is found quickly, high enough that the common
  /// all-cores-running rendezvous never enters the kernel.
  static constexpr std::size_t kSpinsBeforeYield = 4096;

  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

}  // namespace plf::par
