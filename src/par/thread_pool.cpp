#include "par/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "obs/names.hpp"
#include "obs/profile.hpp"
#include "util/clock.hpp"
#include "util/contracts.hpp"

namespace plf::par {

struct ThreadPool::Region {
  std::size_t begin = 0;
  std::size_t end = 0;
  Schedule schedule = Schedule::kStatic;
  std::size_t chunk = 1;
  std::size_t threads = 1;
  const std::function<void(Range, std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};  // dynamic-schedule cursor
  util::Mutex error_m;
  /// First exception thrown by any participant.
  std::exception_ptr error PLF_GUARDED_BY(error_m);
  /// Lock-discipline helper for the caller's post-join rethrow: reads the
  /// slot under error_m (workers' final decrement happens-before the caller
  /// leaving cv_done_, but TSA proves the simple rule "error is only touched
  /// under error_m" instead of the wait-edge argument).
  std::exception_ptr take_error() PLF_EXCLUDES(error_m) {
    util::MutexLock lock(error_m);
    return error;
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread is worker 0; spawn n-1 helpers.
  workers_.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(m_);
    shutting_down_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Region* region = nullptr;
    {
      util::MutexLock lock(m_);
      // Predicate runs with m_ held by the wait loop itself; TSA analyzes
      // the lambda without that context, hence the exemption.
      cv_start_.wait(m_, [&]() PLF_NO_TSA {
        return shutting_down_ || (active_ != nullptr && epoch_ != seen_epoch);
      });
      if (shutting_down_) return;
      seen_epoch = epoch_;
      region = active_;
    }
    try {
      run_share(*region, worker_index);
    } catch (...) {
      util::MutexLock lock(region->error_m);
      if (!region->error) region->error = std::current_exception();
    }
    {
      util::MutexLock lock(m_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run_share(Region& region, std::size_t thread_index) {
  const std::size_t total = region.end - region.begin;
  if (total == 0) return;

  // One span per participating worker per region; each worker thread records
  // into its own registry shard, so these show up as separate trace rows.
  PLF_PROF_SCOPE(obs::kTimerParWorker);

  if (region.schedule == Schedule::kStatic) {
    // Contiguous block per thread, remainder spread over the first blocks.
    const std::size_t base = total / region.threads;
    const std::size_t extra = total % region.threads;
    const std::size_t my_size = base + (thread_index < extra ? 1 : 0);
    if (my_size == 0) return;
    const std::size_t my_begin = region.begin + thread_index * base +
                                 std::min(thread_index, extra);
    (*region.body)(Range{my_begin, my_begin + my_size}, thread_index);
    return;
  }

  // Dynamic: pull chunks off a shared cursor.
  for (;;) {
    const std::size_t start =
        region.next.fetch_add(region.chunk, std::memory_order_relaxed);
    if (start >= total) break;
    const std::size_t stop = std::min(total, start + region.chunk);
    (*region.body)(Range{region.begin + start, region.begin + stop},
                   thread_index);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(Range, std::size_t)>& body,
                              Schedule schedule, std::size_t chunk) {
  PLF_CHECK(begin <= end, "parallel_for: begin > end");
  const std::size_t total = end - begin;
  if (total == 0) return;

  // A pool runs one region at a time: a body that calls parallel_for on the
  // same pool would deadlock waiting for workers that are busy inside it, and
  // two external threads sharing a pool would corrupt the region state. Catch
  // both misuses up front instead.
  bool expected = false;
  PLF_CHECK(in_region_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel),
            "parallel_for: pool already running a region "
            "(nested or concurrent call; pools are single-region)");
  struct RegionFlagReset {
    std::atomic<bool>& flag;
    ~RegionFlagReset() { flag.store(false, std::memory_order_release); }
  } in_region_reset{in_region_};

  Stopwatch sw;
  PLF_PROF_COUNT(obs::kCounterParRegions, 1);
  PLF_PROF_SCOPE(obs::kTimerParRegion);

  Region region;
  region.begin = begin;
  region.end = end;
  region.schedule = schedule;
  region.threads = size();
  region.body = &body;
  if (chunk == 0) {
    // Default dynamic chunk: aim for ~4 chunks per thread.
    chunk = std::max<std::size_t>(1, total / (4 * region.threads));
  }
  region.chunk = chunk;
  PLF_DCHECK(region.chunk >= 1, "parallel_for: zero dynamic chunk");
  PLF_DCHECK(region.threads >= 1, "parallel_for: pool has no threads");

  if (workers_.empty()) {
    run_share(region, 0);
  } else {
    {
      util::MutexLock lock(m_);
      active_ = &region;
      remaining_ = workers_.size();
      ++epoch_;
    }
    cv_start_.notify_all();
    try {
      run_share(region, 0);
    } catch (...) {
      util::MutexLock lock(region.error_m);
      if (!region.error) region.error = std::current_exception();
    }
    {
      util::MutexLock lock(m_);
      // Predicate runs with m_ held by the wait loop itself (see worker_loop).
      cv_done_.wait(m_, [&]() PLF_NO_TSA { return remaining_ == 0; });
      active_ = nullptr;
    }
    // TSA finding (docs/STATIC_ANALYSIS.md): this read used to access
    // region.error bare — safe only via the cv_done_ wait edge, invisible to
    // the analysis and fragile under refactoring. Read it under error_m.
    if (std::exception_ptr error = region.take_error()) {
      std::rethrow_exception(error);
    }
  }

  {
    util::MutexLock lock(stats_m_);
    ++stats_.regions;
    // The body time is included here; callers interested purely in overhead
    // should time empty regions (see the calibration bench).
    stats_.region_overhead_s += sw.seconds();
  }
}

void ThreadPool::parallel_for_each(std::size_t begin, std::size_t end,
                                   const std::function<void(std::size_t)>& body) {
  parallel_for(begin, end, [&body](Range r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) body(i);
  });
}

PoolStats ThreadPool::stats() const {
  util::MutexLock lock(stats_m_);
  return stats_;
}

void ThreadPool::reset_stats() {
  util::MutexLock lock(stats_m_);
  stats_ = PoolStats{};
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace plf::par
