#include "par/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "obs/names.hpp"
#include "obs/profile.hpp"
#include "util/clock.hpp"
#include "util/contracts.hpp"

namespace plf::par {

namespace {
/// Innermost pool whose region body this thread is currently executing.
/// parallel_for checks it to reject nested submission to the same pool (the
/// workers it would wait on may be the ones executing the outer body).
thread_local const ThreadPool* t_executing_pool = nullptr;

struct ExecutingPoolScope {
  const ThreadPool* saved;
  explicit ExecutingPoolScope(const ThreadPool* pool)
      : saved(t_executing_pool) {
    t_executing_pool = pool;
  }
  ~ExecutingPoolScope() { t_executing_pool = saved; }
};
}  // namespace

struct ThreadPool::Region {
  std::size_t begin = 0;
  std::size_t end = 0;
  Schedule schedule = Schedule::kStatic;
  std::size_t chunk = 1;
  std::size_t threads = 1;      ///< claim-slot space == static partition width
  std::size_t total_units = 0;  ///< static: `threads` blocks; dynamic: chunks
  const std::function<void(Range, std::size_t)>* body = nullptr;

  // Claim state, guarded by the owning pool's m_ (a nested struct cannot name
  // the outer instance's capability, so the proof lives in ThreadPool's
  // PLF_REQUIRES(m_) helpers that are the only accessors).
  std::size_t next_unit = 0;  ///< units [0, next_unit) are claimed
  std::size_t in_flight = 0;  ///< units claimed but not yet finished
  bool done = false;          ///< fully executed and unlinked from the queue

  util::Mutex error_m;
  /// First exception thrown by any participant.
  std::exception_ptr error PLF_GUARDED_BY(error_m);
  void record_error() PLF_EXCLUDES(error_m) {
    util::MutexLock lock(error_m);
    if (!error) error = std::current_exception();
  }
  /// Lock-discipline helper for the caller's post-join rethrow: reads the
  /// slot under error_m (the final in_flight decrement happens-before the
  /// caller leaving cv_done_, but TSA proves the simple rule "error is only
  /// touched under error_m" instead of the wait-edge argument).
  std::exception_ptr take_error() PLF_EXCLUDES(error_m) {
    util::MutexLock lock(error_m);
    return error;
  }

  /// Index range of one unit. Static units are the contiguous per-thread
  /// blocks (remainder spread over the first blocks) — the partition depends
  /// only on (begin, end, threads), never on which thread claims the block.
  Range unit_range(std::size_t unit) const {
    const std::size_t total = end - begin;
    if (schedule == Schedule::kStatic) {
      const std::size_t base = total / threads;
      const std::size_t extra = total % threads;
      const std::size_t my_size = base + (unit < extra ? 1 : 0);
      const std::size_t my_begin =
          begin + unit * base + std::min(unit, extra);
      return Range{my_begin, my_begin + my_size};
    }
    const std::size_t start = unit * chunk;
    return Range{begin + start, begin + std::min(total, start + chunk)};
  }

  /// thread_index the body sees for this unit: the block index itself under
  /// static scheduling (determinism contract), the claimer's stable slot
  /// under dynamic.
  std::size_t unit_thread_index(std::size_t unit, std::size_t slot) const {
    return schedule == Schedule::kStatic ? unit : slot;
  }
};

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The calling thread is worker 0; spawn n-1 helpers.
  workers_.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(m_);
    shutting_down_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool::Region* ThreadPool::claimable_region() {
  for (Region* r : queue_) {
    if (r->next_unit < r->total_units) return r;
  }
  return nullptr;
}

void ThreadPool::finish_if_complete(Region& region) {
  if (region.next_unit < region.total_units || region.in_flight != 0 ||
      region.done) {
    return;
  }
  queue_.erase(std::find(queue_.begin(), queue_.end(), &region));
  region.done = true;
  // notify_all: several submitters may be parked here, each watching its own
  // region's done flag. After this the Region (stack-owned by its submitter)
  // may be destroyed — do not touch it again.
  cv_done_.notify_all();
}

void ThreadPool::run_unit(Region& region, std::size_t unit, std::size_t slot) {
  const Range r = region.unit_range(unit);
  if (r.empty()) return;
  // One span per executed unit; each thread records into its own registry
  // shard, so these show up as separate trace rows.
  PLF_PROF_SCOPE(obs::kTimerParWorker);
  ExecutingPoolScope scope(this);
  try {
    (*region.body)(r, region.unit_thread_index(unit, slot));
  } catch (...) {
    region.record_error();
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // worker_index in [1, size()) is this thread's stable dynamic-schedule
  // claim slot; slot 0 belongs to whichever thread submitted the region.
  for (;;) {
    Region* region = nullptr;
    std::size_t unit = 0;
    {
      util::MutexLock lock(m_);
      // Predicate runs with m_ held by the wait loop itself; TSA analyzes
      // the lambda without that context, hence the exemption.
      cv_start_.wait(m_, [&]() PLF_NO_TSA {
        return shutting_down_ || claimable_region() != nullptr;
      });
      if (shutting_down_) return;
      region = claimable_region();
      unit = region->next_unit++;
      ++region->in_flight;
    }
    run_unit(*region, unit, worker_index);
    {
      util::MutexLock lock(m_);
      --region->in_flight;
      finish_if_complete(*region);
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(Range, std::size_t)>& body,
                              Schedule schedule, std::size_t chunk) {
  PLF_CHECK(begin <= end, "parallel_for: begin > end");
  const std::size_t total = end - begin;
  if (total == 0) return;

  // A region body must not submit to the pool executing it: the workers it
  // would wait on may be the ones running the outer region. Concurrent calls
  // from distinct external threads are fine — they queue.
  PLF_CHECK(t_executing_pool != this,
            "parallel_for: nested call from inside a region body on the same "
            "pool (submit from a different thread or pool)");

  Stopwatch sw;
  PLF_PROF_COUNT(obs::kCounterParRegions, 1);
  PLF_PROF_SCOPE(obs::kTimerParRegion);

  Region region;
  region.begin = begin;
  region.end = end;
  region.schedule = schedule;
  region.threads = size();
  region.body = &body;
  if (chunk == 0) {
    // Default dynamic chunk: aim for ~4 chunks per thread.
    chunk = std::max<std::size_t>(1, total / (4 * region.threads));
  }
  region.chunk = chunk;
  region.total_units = schedule == Schedule::kStatic
                           ? region.threads
                           : (total + chunk - 1) / chunk;
  PLF_DCHECK(region.chunk >= 1, "parallel_for: zero dynamic chunk");
  PLF_DCHECK(region.threads >= 1, "parallel_for: pool has no threads");

  if (workers_.empty()) {
    // Serial pool: run every unit inline; the first exception propagates and
    // abandons the rest, matching the single participant's old share.
    for (std::size_t u = 0; u < region.total_units; ++u) {
      const Range r = region.unit_range(u);
      if (r.empty()) continue;
      PLF_PROF_SCOPE(obs::kTimerParWorker);
      ExecutingPoolScope scope(this);
      (*region.body)(r, region.unit_thread_index(u, 0));
    }
  } else {
    {
      util::MutexLock lock(m_);
      queue_.push_back(&region);
    }
    cv_start_.notify_all();
    // Participate in our own region only (claim slot 0): helping other
    // queued regions would let their runtimes leak into this caller's
    // latency. Workers drain whatever we leave unclaimed.
    for (;;) {
      std::size_t unit;
      {
        util::MutexLock lock(m_);
        if (region.next_unit >= region.total_units) break;
        unit = region.next_unit++;
        ++region.in_flight;
      }
      run_unit(region, unit, 0);
      {
        util::MutexLock lock(m_);
        --region.in_flight;
        finish_if_complete(region);
      }
    }
    {
      util::MutexLock lock(m_);
      // Predicate runs with m_ held by the wait loop itself (see worker_loop).
      cv_done_.wait(m_, [&]() PLF_NO_TSA { return region.done; });
    }
    // TSA finding (docs/STATIC_ANALYSIS.md): this read used to access
    // region.error bare — safe only via the cv_done_ wait edge, invisible to
    // the analysis and fragile under refactoring. Read it under error_m.
    if (std::exception_ptr error = region.take_error()) {
      std::rethrow_exception(error);
    }
  }

  {
    util::MutexLock lock(stats_m_);
    ++stats_.regions;
    // The body time is included here; callers interested purely in overhead
    // should time empty regions (see the calibration bench).
    stats_.region_overhead_s += sw.seconds();
  }
}

void ThreadPool::parallel_for_each(std::size_t begin, std::size_t end,
                                   const std::function<void(std::size_t)>& body) {
  parallel_for(begin, end, [&body](Range r, std::size_t) {
    for (std::size_t i = r.begin; i < r.end; ++i) body(i);
  });
}

PoolStats ThreadPool::stats() const {
  util::MutexLock lock(stats_m_);
  return stats_;
}

void ThreadPool::reset_stats() {
  util::MutexLock lock(stats_m_);
  stats_ = PoolStats{};
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace plf::par
