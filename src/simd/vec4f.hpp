// 4-wide single-precision SIMD vector.
//
// This is the register shape of the paper's kernels on every platform: the
// SPU's 128-bit SIMD unit, SSE on the x86 hosts, and the groups-of-4-threads
// coalescing trick on the GPU all operate on one 4-float discrete-rate array
// (Fig. 3) at a time. On x86 we map it to SSE; otherwise a scalar fallback
// with identical semantics is used, so every consumer (including the Cell
// and GPU simulators, which emulate SPU/warp lanes with it) is portable.
#pragma once

#include <array>
#include <cstddef>

#if defined(__SSE2__)
#define PLF_SIMD_SSE 1
#include <immintrin.h>
#endif

namespace plf::simd {

#if defined(PLF_SIMD_SSE)

/// 4 packed floats backed by an SSE register.
struct Vec4f {
  __m128 v;

  Vec4f() : v(_mm_setzero_ps()) {}
  explicit Vec4f(__m128 x) : v(x) {}
  explicit Vec4f(float x) : v(_mm_set1_ps(x)) {}
  Vec4f(float a, float b, float c, float d) : v(_mm_setr_ps(a, b, c, d)) {}

  static Vec4f load(const float* p) { return Vec4f(_mm_load_ps(p)); }
  static Vec4f loadu(const float* p) { return Vec4f(_mm_loadu_ps(p)); }
  void store(float* p) const { _mm_store_ps(p, v); }
  void storeu(float* p) const { _mm_storeu_ps(p, v); }

  friend Vec4f operator+(Vec4f a, Vec4f b) { return Vec4f(_mm_add_ps(a.v, b.v)); }
  friend Vec4f operator-(Vec4f a, Vec4f b) { return Vec4f(_mm_sub_ps(a.v, b.v)); }
  friend Vec4f operator*(Vec4f a, Vec4f b) { return Vec4f(_mm_mul_ps(a.v, b.v)); }

  Vec4f& operator+=(Vec4f b) { v = _mm_add_ps(v, b.v); return *this; }
  Vec4f& operator*=(Vec4f b) { v = _mm_mul_ps(v, b.v); return *this; }

  /// Fused (or fused-equivalent) multiply-add: this * b + c.
  static Vec4f fma(Vec4f a, Vec4f b, Vec4f c) {
#if defined(__FMA__)
    return Vec4f(_mm_fmadd_ps(a.v, b.v, c.v));
#else
    return a * b + c;
#endif
  }

  /// Element-wise maximum.
  static Vec4f max(Vec4f a, Vec4f b) { return Vec4f(_mm_max_ps(a.v, b.v)); }

  /// Horizontal sum of all 4 lanes.
  float hsum() const {
    __m128 shuf = _mm_movehdup_ps(v);
    __m128 sums = _mm_add_ps(v, shuf);
    shuf = _mm_movehl_ps(shuf, sums);
    sums = _mm_add_ss(sums, shuf);
    return _mm_cvtss_f32(sums);
  }

  /// Horizontal maximum of all 4 lanes.
  float hmax() const {
    __m128 m = _mm_max_ps(v, _mm_shuffle_ps(v, v, _MM_SHUFFLE(2, 3, 0, 1)));
    m = _mm_max_ps(m, _mm_shuffle_ps(m, m, _MM_SHUFFLE(1, 0, 3, 2)));
    return _mm_cvtss_f32(m);
  }

  float lane(std::size_t i) const {
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, v);
    return tmp[i];
  }
};

/// In-place 4x4 transpose of four Vec4f rows (used by the column-wise SIMD
/// layout, paper §3.3 approach ii).
inline void transpose4(Vec4f& r0, Vec4f& r1, Vec4f& r2, Vec4f& r3) {
  _MM_TRANSPOSE4_PS(r0.v, r1.v, r2.v, r3.v);
}

#else  // scalar fallback

/// 4 packed floats, scalar implementation with SSE-identical semantics.
struct Vec4f {
  std::array<float, 4> v{};

  Vec4f() = default;
  explicit Vec4f(float x) { v.fill(x); }
  Vec4f(float a, float b, float c, float d) : v{a, b, c, d} {}

  static Vec4f load(const float* p) { return loadu(p); }
  static Vec4f loadu(const float* p) {
    Vec4f r;
    for (std::size_t i = 0; i < 4; ++i) r.v[i] = p[i];
    return r;
  }
  void store(float* p) const { storeu(p); }
  void storeu(float* p) const {
    for (std::size_t i = 0; i < 4; ++i) p[i] = v[i];
  }

  friend Vec4f operator+(Vec4f a, Vec4f b) {
    Vec4f r;
    for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] + b.v[i];
    return r;
  }
  friend Vec4f operator-(Vec4f a, Vec4f b) {
    Vec4f r;
    for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] - b.v[i];
    return r;
  }
  friend Vec4f operator*(Vec4f a, Vec4f b) {
    Vec4f r;
    for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] * b.v[i];
    return r;
  }
  Vec4f& operator+=(Vec4f b) { return *this = *this + b; }
  Vec4f& operator*=(Vec4f b) { return *this = *this * b; }

  static Vec4f fma(Vec4f a, Vec4f b, Vec4f c) { return a * b + c; }

  static Vec4f max(Vec4f a, Vec4f b) {
    Vec4f r;
    for (std::size_t i = 0; i < 4; ++i) r.v[i] = a.v[i] > b.v[i] ? a.v[i] : b.v[i];
    return r;
  }

  float hsum() const { return (v[0] + v[1]) + (v[2] + v[3]); }
  float hmax() const {
    float m = v[0];
    for (std::size_t i = 1; i < 4; ++i) m = v[i] > m ? v[i] : m;
    return m;
  }
  float lane(std::size_t i) const { return v[i]; }
};

inline void transpose4(Vec4f& r0, Vec4f& r1, Vec4f& r2, Vec4f& r3) {
  Vec4f c0(r0.lane(0), r1.lane(0), r2.lane(0), r3.lane(0));
  Vec4f c1(r0.lane(1), r1.lane(1), r2.lane(1), r3.lane(1));
  Vec4f c2(r0.lane(2), r1.lane(2), r2.lane(2), r3.lane(2));
  Vec4f c3(r0.lane(3), r1.lane(3), r2.lane(3), r3.lane(3));
  r0 = c0;
  r1 = c1;
  r2 = c2;
  r3 = c3;
}

#endif

}  // namespace plf::simd
