#include "simd/simd.hpp"

namespace plf::simd {

std::string backend_name() {
#if defined(PLF_SIMD_AVX) && defined(__FMA__)
  return "avx+fma";
#elif defined(PLF_SIMD_AVX)
  return "avx";
#elif defined(PLF_SIMD_SSE)
  return "sse2";
#else
  return "scalar";
#endif
}

}  // namespace plf::simd
