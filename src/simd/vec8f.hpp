// 8-wide single-precision SIMD vector (AVX2 when available, otherwise a pair
// of Vec4f with identical semantics).
//
// The paper's x86 kernels were limited to what 2009 compilers auto-
// vectorized; we additionally provide hand-written AVX2 kernels that process
// two discrete-rate arrays per register — a "what modern hosts do" extension
// benchmarked in bench_kernels.
#pragma once

#include <cstddef>

#include "simd/vec4f.hpp"

#if defined(__AVX__)
#define PLF_SIMD_AVX 1
#endif

namespace plf::simd {

#if defined(PLF_SIMD_AVX)

/// 8 packed floats backed by an AVX register.
struct Vec8f {
  __m256 v;

  Vec8f() : v(_mm256_setzero_ps()) {}
  explicit Vec8f(__m256 x) : v(x) {}
  explicit Vec8f(float x) : v(_mm256_set1_ps(x)) {}

  static Vec8f load(const float* p) { return Vec8f(_mm256_load_ps(p)); }
  static Vec8f loadu(const float* p) { return Vec8f(_mm256_loadu_ps(p)); }

  /// Concatenate two 4-wide vectors into the low/high lanes.
  static Vec8f combine(Vec4f lo, Vec4f hi) {
    return Vec8f(_mm256_insertf128_ps(_mm256_castps128_ps256(lo.v), hi.v, 1));
  }
  void store(float* p) const { _mm256_store_ps(p, v); }
  void storeu(float* p) const { _mm256_storeu_ps(p, v); }

  friend Vec8f operator+(Vec8f a, Vec8f b) {
    return Vec8f(_mm256_add_ps(a.v, b.v));
  }
  friend Vec8f operator*(Vec8f a, Vec8f b) {
    return Vec8f(_mm256_mul_ps(a.v, b.v));
  }
  Vec8f& operator+=(Vec8f b) { v = _mm256_add_ps(v, b.v); return *this; }

  static Vec8f fma(Vec8f a, Vec8f b, Vec8f c) {
#if defined(__FMA__)
    return Vec8f(_mm256_fmadd_ps(a.v, b.v, c.v));
#else
    return a * b + c;
#endif
  }

  static Vec8f max(Vec8f a, Vec8f b) { return Vec8f(_mm256_max_ps(a.v, b.v)); }

  float hsum() const {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    return Vec4f(_mm_add_ps(lo, hi)).hsum();
  }

  float hmax() const {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    return Vec4f(_mm_max_ps(lo, hi)).hmax();
  }
};

#else

/// 8 packed floats as two Vec4f halves.
struct Vec8f {
  Vec4f lo, hi;

  Vec8f() = default;
  explicit Vec8f(float x) : lo(x), hi(x) {}

  static Vec8f load(const float* p) { return loadu(p); }
  static Vec8f loadu(const float* p) {
    Vec8f r;
    r.lo = Vec4f::loadu(p);
    r.hi = Vec4f::loadu(p + 4);
    return r;
  }

  /// Concatenate two 4-wide vectors into the low/high lanes.
  static Vec8f combine(Vec4f lo, Vec4f hi) {
    Vec8f r;
    r.lo = lo;
    r.hi = hi;
    return r;
  }
  void store(float* p) const { storeu(p); }
  void storeu(float* p) const {
    lo.storeu(p);
    hi.storeu(p + 4);
  }

  friend Vec8f operator+(Vec8f a, Vec8f b) {
    Vec8f r;
    r.lo = a.lo + b.lo;
    r.hi = a.hi + b.hi;
    return r;
  }
  friend Vec8f operator*(Vec8f a, Vec8f b) {
    Vec8f r;
    r.lo = a.lo * b.lo;
    r.hi = a.hi * b.hi;
    return r;
  }
  Vec8f& operator+=(Vec8f b) { return *this = *this + b; }

  static Vec8f fma(Vec8f a, Vec8f b, Vec8f c) {
    Vec8f r;
    r.lo = Vec4f::fma(a.lo, b.lo, c.lo);
    r.hi = Vec4f::fma(a.hi, b.hi, c.hi);
    return r;
  }

  static Vec8f max(Vec8f a, Vec8f b) {
    Vec8f r;
    r.lo = Vec4f::max(a.lo, b.lo);
    r.hi = Vec4f::max(a.hi, b.hi);
    return r;
  }

  float hsum() const { return lo.hsum() + hi.hsum(); }
  float hmax() const {
    const float a = lo.hmax();
    const float b = hi.hmax();
    return a > b ? a : b;
  }
};

#endif

}  // namespace plf::simd
