// Backend identification for the SIMD layer.
#pragma once

#include <string>

#include "simd/vec4f.hpp"
#include "simd/vec8f.hpp"

namespace plf::simd {

/// Human-readable name of the compiled-in backend ("avx2+fma", "sse2",
/// "scalar", ...). Decided at compile time.
std::string backend_name();

/// True when 4-wide operations map to hardware SIMD instructions.
constexpr bool has_hardware_vec4() {
#if defined(PLF_SIMD_SSE)
  return true;
#else
  return false;
#endif
}

/// True when 8-wide operations map to a single hardware register.
constexpr bool has_hardware_vec8() {
#if defined(PLF_SIMD_AVX)
  return true;
#else
  return false;
#endif
}

}  // namespace plf::simd
