#include "phylo/nexus.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace plf::phylo {

namespace {

/// Remove bracket comments (nesting tolerated), preserving line structure.
std::string strip_comments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  int depth = 0;
  for (char c : text) {
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      if (depth > 0) --depth;
    } else if (depth == 0) {
      out += c;
    }
  }
  if (depth != 0) throw ParseError("NEXUS: unterminated [comment]");
  return out;
}

std::string upper(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

/// Cursor-based scanner over comment-stripped NEXUS text.
class Scanner {
 public:
  explicit Scanner(std::string text) : text_(std::move(text)) {}

  bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  /// Next token: ';' ',' '=' as single characters, otherwise a word.
  std::string next() {
    skip_ws();
    if (pos_ >= text_.size()) throw ParseError("NEXUS: unexpected end of file");
    const char c = text_[pos_];
    if (c == ';' || c == ',' || c == '=') {
      ++pos_;
      return std::string(1, c);
    }
    std::string word;
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(ch)) || ch == ';' ||
          ch == ',' || ch == '=') {
        break;
      }
      word += ch;
      ++pos_;
    }
    return word;
  }

  std::string peek() {
    const std::size_t save = pos_;
    std::string t = next();
    pos_ = save;
    return t;
  }

  /// Everything up to (not including) the next ';', raw.
  std::string until_semicolon() {
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != ';') out += text_[pos_++];
    if (pos_ >= text_.size()) throw ParseError("NEXUS: missing ';'");
    ++pos_;  // consume ';'
    return out;
  }

  /// Rest of the current line (for line-structured MATRIX rows).
  std::string rest_of_line() {
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '\n' && text_[pos_] != ';') {
      out += text_[pos_++];
    }
    return out;
  }

  /// Skip spaces/tabs but NOT newlines (matrix row scanning).
  void skip_blanks() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool at_newline() { return pos_ < text_.size() && text_[pos_] == '\n'; }
  void consume_newline() {
    if (at_newline()) ++pos_;
  }
  char peek_char() { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void consume_char() {
    if (pos_ < text_.size()) ++pos_;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string text_;
  std::size_t pos_ = 0;
};

void skip_block(Scanner& sc) {
  for (;;) {
    const std::string t = upper(sc.next());
    if (t == "END" || t == "ENDBLOCK") {
      if (sc.next() != ";") throw ParseError("NEXUS: END without ';'");
      return;
    }
  }
}

/// DATA/CHARACTERS block.
void parse_data_block(Scanner& sc, NexusFile& out) {
  std::size_t ntax = 0, nchar = 0;

  // Names in first-appearance order; sequences accumulated per name.
  std::vector<std::string> order;
  std::map<std::string, std::string> seqs;

  for (;;) {
    const std::string cmd = upper(sc.next());
    if (cmd == "END" || cmd == "ENDBLOCK") {
      if (sc.next() != ";") throw ParseError("NEXUS: END without ';'");
      break;
    }
    if (cmd == "DIMENSIONS") {
      const std::string body = sc.until_semicolon();
      std::istringstream is(body);
      std::string item;
      while (is >> item) {
        const std::string u = upper(item);
        const auto eq = u.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = u.substr(0, eq);
        const std::string val = u.substr(eq + 1);
        if (key == "NTAX") ntax = std::stoul(val);
        if (key == "NCHAR") nchar = std::stoul(val);
      }
    } else if (cmd == "FORMAT") {
      const std::string body = upper(sc.until_semicolon());
      if (body.find("DATATYPE") != std::string::npos &&
          body.find("DNA") == std::string::npos &&
          body.find("NUCLEOTIDE") == std::string::npos &&
          body.find("RNA") == std::string::npos) {
        throw ParseError("NEXUS: only DNA/RNA data is supported");
      }
      // INTERLEAVE needs no special handling: rows are line-structured and
      // accumulated per taxon name either way.
    } else if (cmd == "MATRIX") {
      // Line-structured rows: `name chunk chunk...`, repeated (interleaved
      // files repeat the names; sequential files list each taxon once).
      for (;;) {
        sc.skip_blanks();
        while (sc.at_newline()) {
          sc.consume_newline();
          sc.skip_blanks();
        }
        if (sc.peek_char() == ';') {
          sc.next();  // consume ';'
          break;
        }
        if (sc.peek_char() == '\0') throw ParseError("NEXUS: unterminated MATRIX");
        // Name = first word on the line.
        std::string name;
        while (sc.peek_char() != '\0' && sc.peek_char() != ' ' &&
               sc.peek_char() != '\t' && sc.peek_char() != '\n' &&
               sc.peek_char() != ';') {
          name += sc.peek_char();
          sc.consume_char();
        }
        const std::string rest = sc.rest_of_line();
        if (name.empty()) throw ParseError("NEXUS: empty taxon name in MATRIX");
        if (!seqs.count(name)) order.push_back(name);
        std::string& seq = seqs[name];
        for (char c : rest) {
          if (!std::isspace(static_cast<unsigned char>(c))) seq += c;
        }
      }
    } else {
      // Unknown command: swallow to ';'.
      sc.until_semicolon();
    }
  }

  PLF_CHECK(!order.empty(), "NEXUS: DATA block has no MATRIX rows");
  if (ntax != 0) {
    PLF_CHECK(order.size() == ntax, "NEXUS: NTAX does not match MATRIX rows");
  }
  std::vector<std::string> sequences;
  for (const auto& name : order) {
    const std::string& s = seqs[name];
    if (nchar != 0) {
      PLF_CHECK(s.size() == nchar,
                "NEXUS: sequence length != NCHAR for taxon " + name);
    }
    sequences.push_back(s);
  }
  out.alignment = Alignment(order, sequences);
  out.has_alignment = true;
}

/// Replace translate-table labels inside a Newick string.
std::string apply_translate(const std::string& newick,
                            const std::map<std::string, std::string>& table) {
  if (table.empty()) return newick;
  std::string out;
  std::string label;
  auto flush = [&] {
    if (label.empty()) return;
    const auto it = table.find(label);
    out += (it != table.end()) ? it->second : label;
    label.clear();
  };
  bool in_length = false;  // after ':' labels are numbers, never translated
  for (char c : newick) {
    if (c == '(' || c == ')' || c == ',' || c == ';') {
      flush();
      in_length = false;
      out += c;
    } else if (c == ':') {
      flush();
      in_length = true;
      out += c;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (in_length) {
      out += c;
    } else {
      label += c;
    }
  }
  flush();
  return out;
}

void parse_trees_block(Scanner& sc, NexusFile& out) {
  std::map<std::string, std::string> translate;
  for (;;) {
    const std::string cmd = upper(sc.next());
    if (cmd == "END" || cmd == "ENDBLOCK") {
      if (sc.next() != ";") throw ParseError("NEXUS: END without ';'");
      break;
    }
    if (cmd == "TRANSLATE") {
      const std::string body = sc.until_semicolon();
      std::istringstream is(body);
      std::string key, value;
      while (is >> key >> value) {
        if (!value.empty() && value.back() == ',') value.pop_back();
        translate[key] = value;
      }
    } else if (cmd == "TREE" || cmd == "UTREE") {
      std::string name = sc.next();
      if (name == "=") throw ParseError("NEXUS: TREE without a name");
      if (sc.next() != "=") throw ParseError("NEXUS: TREE missing '='");
      std::string newick = sc.until_semicolon();
      // Trim whitespace; comments ([&U] etc.) were stripped globally.
      newick.erase(std::remove_if(newick.begin(), newick.end(),
                                  [](char c) {
                                    return c == '\n' || c == '\r';
                                  }),
                   newick.end());
      const auto first = newick.find_first_not_of(" \t");
      if (first != std::string::npos) newick = newick.substr(first);
      out.trees.emplace_back(name, apply_translate(newick, translate) + ";");
    } else {
      sc.until_semicolon();
    }
  }
}

}  // namespace

NexusFile parse_nexus(const std::string& text) {
  Scanner sc(strip_comments(text));
  const std::string magic = sc.next();
  if (upper(magic) != "#NEXUS") {
    throw ParseError("NEXUS: file must start with #NEXUS");
  }

  NexusFile out;
  while (!sc.eof()) {
    const std::string kw = upper(sc.next());
    if (kw != "BEGIN") throw ParseError("NEXUS: expected BEGIN, got " + kw);
    const std::string block = upper(sc.next());
    if (sc.next() != ";") throw ParseError("NEXUS: BEGIN without ';'");
    if (block == "DATA" || block == "CHARACTERS") {
      parse_data_block(sc, out);
    } else if (block == "TREES") {
      parse_trees_block(sc, out);
    } else {
      skip_block(sc);
    }
  }
  return out;
}

NexusFile read_nexus_file(const std::string& path) {
  std::ifstream f(path);
  PLF_CHECK(f.good(), "cannot open NEXUS file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_nexus(buf.str());
}

void write_nexus(std::ostream& os, const Alignment& alignment,
                 const std::vector<std::pair<std::string, std::string>>& trees) {
  os << "#NEXUS\n\nBEGIN DATA;\n";
  os << "  DIMENSIONS NTAX=" << alignment.n_taxa() << " NCHAR="
     << alignment.n_columns() << ";\n";
  os << "  FORMAT DATATYPE=DNA MISSING=? GAP=-;\n";
  os << "  MATRIX\n";
  for (std::size_t t = 0; t < alignment.n_taxa(); ++t) {
    os << "    " << alignment.name(t) << ' ' << alignment.sequence(t) << '\n';
  }
  os << "  ;\nEND;\n";
  if (!trees.empty()) {
    os << "\nBEGIN TREES;\n";
    for (const auto& [name, newick] : trees) {
      os << "  TREE " << name << " = " << newick << '\n';
    }
    os << "END;\n";
  }
}

}  // namespace plf::phylo
