// NEXUS file support — the format MrBayes actually reads.
//
// A tolerant subset sufficient for phylogenetic data interchange:
//   * DATA/CHARACTERS block: DIMENSIONS, FORMAT (datatype/missing/gap,
//     interleaved), MATRIX (sequential or interleaved);
//   * TREES block: optional TRANSLATE table, TREE statements (rooted [&R] /
//     unrooted [&U] comments ignored);
//   * bracket comments `[...]` anywhere, case-insensitive keywords.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "phylo/alignment.hpp"
#include "phylo/tree.hpp"

namespace plf::phylo {

struct NexusFile {
  Alignment alignment;                    ///< from the DATA block (if present)
  bool has_alignment = false;
  /// TREE statements: (name, Newick-with-taxon-names) after TRANSLATE
  /// resolution.
  std::vector<std::pair<std::string, std::string>> trees;
};

/// Parse NEXUS text. Throws plf::ParseError on malformed input.
NexusFile parse_nexus(const std::string& text);

/// Read a NEXUS file from disk.
NexusFile read_nexus_file(const std::string& path);

/// Write a DATA block (and optionally a TREES block) in NEXUS format.
void write_nexus(std::ostream& os, const Alignment& alignment,
                 const std::vector<std::pair<std::string, std::string>>& trees = {});

}  // namespace plf::phylo
