// Multiple sequence alignment container with FASTA and (sequential) PHYLIP
// serialization — the dataset substrate: MrBayes reads aligned DNA matrices
// and the paper's inputs are Seq-Gen alignments of 1K-50K columns.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "phylo/dna.hpp"

namespace plf::phylo {

/// A rectangular DNA alignment: `n_taxa` named rows of equal length.
class Alignment {
 public:
  Alignment() = default;

  /// Construct from parallel vectors of names and (equal-length) sequences.
  Alignment(std::vector<std::string> names,
            std::vector<std::string> sequences);

  std::size_t n_taxa() const { return names_.size(); }
  std::size_t n_columns() const { return columns_; }

  const std::string& name(std::size_t taxon) const { return names_[taxon]; }
  const std::vector<std::string>& names() const { return names_; }

  /// State mask of taxon `t` at column `c`.
  StateMask at(std::size_t t, std::size_t c) const {
    return data_[t * columns_ + c];
  }

  /// Row of masks for one taxon.
  const StateMask* row(std::size_t t) const { return &data_[t * columns_]; }

  /// Sequence of taxon `t` rendered back to IUPAC characters.
  std::string sequence(std::size_t t) const;

  /// Index of the taxon with this name; throws plf::Error if absent.
  std::size_t taxon_index(const std::string& name) const;

  // --- I/O ---
  static Alignment parse_fasta(const std::string& text);
  static Alignment parse_phylip(const std::string& text);
  static Alignment read_file(const std::string& path);  ///< by extension/sniffing

  void write_fasta(std::ostream& os) const;
  void write_phylip(std::ostream& os) const;

 private:
  std::vector<std::string> names_;
  std::vector<StateMask> data_;  // row-major n_taxa x columns
  std::size_t columns_ = 0;
};

}  // namespace plf::phylo
