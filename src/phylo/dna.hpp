// DNA alphabet with IUPAC ambiguity codes.
//
// States are A=0, C=1, G=2, T=3 (the paper's Fig. 2 ordering). Observed
// characters are stored as 4-bit masks so that ambiguity codes and gaps make
// the tip conditional likelihoods exact: a tip's likelihood for state i is 1
// if bit i is set, else 0 (Felsenstein 1981).
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace plf::phylo {

inline constexpr std::size_t kNumStates = 4;

/// 4-bit presence mask over {A, C, G, T}. kGapMask (all bits) encodes '-'/'N'.
using StateMask = std::uint8_t;

inline constexpr StateMask kMaskA = 1;
inline constexpr StateMask kMaskC = 2;
inline constexpr StateMask kMaskG = 4;
inline constexpr StateMask kMaskT = 8;
inline constexpr StateMask kGapMask = 15;

/// Number of distinct tip masks (1..15 are valid; 0 is invalid).
inline constexpr std::size_t kNumMasks = 16;

/// Translate an input character (case-insensitive IUPAC code, '-', '?', '.')
/// to a state mask. Returns 0 for characters that are not valid DNA codes.
StateMask char_to_mask(char c);

/// Inverse of char_to_mask for display (returns an uppercase IUPAC code;
/// '?' for the invalid mask 0).
char mask_to_char(StateMask m);

/// True when the mask identifies exactly one nucleotide.
constexpr bool is_unambiguous(StateMask m) {
  return m == kMaskA || m == kMaskC || m == kMaskG || m == kMaskT;
}

/// State index (0-3) for an unambiguous mask; undefined otherwise.
constexpr std::size_t mask_to_state(StateMask m) {
  return m == kMaskA ? 0 : m == kMaskC ? 1 : m == kMaskG ? 2 : 3;
}

constexpr StateMask state_to_mask(std::size_t state) {
  return static_cast<StateMask>(1u << state);
}

/// Name of a state index, "ACGT"[i].
constexpr char state_to_char(std::size_t state) { return "ACGT"[state]; }

/// Tip likelihood row for each mask value: tip_row(m)[i] == (m >> i) & 1.
const std::array<float, kNumStates>& tip_row(StateMask m);

}  // namespace plf::phylo
