// Nucleotide substitution models (JC69, HKY85, GTR) with discrete-Γ rate
// variation — the statistical machinery behind the paper's Q matrix (Fig. 2)
// and the 4-rate conditional likelihood elements (Fig. 3).
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "numerics/discrete_gamma.hpp"
#include "numerics/eigen.hpp"
#include "numerics/matrix4.hpp"
#include "util/aligned.hpp"

namespace plf::phylo {

/// Exchangeability order used throughout: AC, AG, AT, CG, CT, GT.
struct GtrParams {
  std::array<double, 6> rates{1, 1, 1, 1, 1, 1};  ///< relative exchangeabilities
  std::array<double, 4> pi{0.25, 0.25, 0.25, 0.25};  ///< stationary frequencies
  double gamma_shape = 1.0;        ///< Γ shape alpha for among-site variation
  std::size_t n_rate_categories = 4;  ///< discrete-Γ categories (paper uses 4)
  /// Proportion of invariable sites (the +I of GTR+I+Γ). 0 disables the
  /// invariant-sites mixture.
  double p_invariant = 0.0;

  static GtrParams jc69(double shape = 1.0, std::size_t cats = 4);
  static GtrParams hky85(double kappa, const std::array<double, 4>& pi,
                         double shape = 1.0, std::size_t cats = 4);
};

/// Per-branch transition probabilities for every rate category, stored in
/// single precision in the layouts the kernels consume:
///   row-major:    tiP[k*16 + i*4 + j] = P_k(t)[i][j]   (approach i)
///   column-major: tiPT[k*16 + j*4 + i] = P_k(t)[i][j]  (approach ii, the
///   transposed matrices the paper precomputes for column-wise SPU access)
class TransitionMatrices {
 public:
  TransitionMatrices() = default;
  TransitionMatrices(std::size_t n_categories);

  std::size_t n_categories() const { return k_; }

  float* row_major() { return rm_.data(); }
  const float* row_major() const { return rm_.data(); }
  float* col_major() { return cm_.data(); }
  const float* col_major() const { return cm_.data(); }

  /// P for category k as a double-precision matrix (test/diagnostic use).
  num::Matrix4 matrix(std::size_t k) const;

  /// Fill both layouts from the double-precision per-category matrices.
  void assign(const std::vector<num::Matrix4>& per_category);

 private:
  std::size_t k_ = 0;
  aligned_vector<float> rm_;
  aligned_vector<float> cm_;
};

/// A fully-specified reversible substitution process: normalized Q, spectral
/// decomposition, and discrete-Γ category rates.
class SubstitutionModel {
 public:
  explicit SubstitutionModel(const GtrParams& params);

  const GtrParams& params() const { return params_; }
  const num::Matrix4& q() const { return q_; }
  const std::array<double, 4>& pi() const { return params_.pi; }
  std::size_t n_rate_categories() const { return params_.n_rate_categories; }
  const std::vector<double>& category_rates() const { return category_rates_; }

  /// Transition matrices P(r_k * t) for all categories at branch length t.
  TransitionMatrices transition_matrices(double t) const;

  /// Double-precision P(t) for one category (test/diagnostic use).
  num::Matrix4 transition_matrix(double t, std::size_t category) const;

 private:
  GtrParams params_;
  num::Matrix4 q_;
  num::ReversibleSpectral spectral_;
  std::vector<double> category_rates_;
};

/// Build the normalized GTR rate matrix (mean rate 1) for the given params.
num::Matrix4 build_gtr_q(const std::array<double, 6>& rates,
                         const std::array<double, 4>& pi);

}  // namespace plf::phylo
