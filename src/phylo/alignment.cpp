#include "phylo/alignment.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace plf::phylo {

Alignment::Alignment(std::vector<std::string> names,
                     std::vector<std::string> sequences) {
  PLF_CHECK(names.size() == sequences.size(),
            "alignment: names/sequences size mismatch");
  PLF_CHECK(!names.empty(), "alignment: needs at least one taxon");
  columns_ = sequences.front().size();
  PLF_CHECK(columns_ > 0, "alignment: empty sequences");
  names_ = std::move(names);
  data_.reserve(names_.size() * columns_);
  for (std::size_t t = 0; t < names_.size(); ++t) {
    const std::string& s = sequences[t];
    PLF_CHECK(s.size() == columns_, "alignment: ragged rows (taxon " +
                                        names_[t] + ")");
    for (char c : s) {
      const StateMask m = char_to_mask(c);
      if (m == 0) {
        throw ParseError(std::string("invalid DNA character '") + c +
                         "' in taxon " + names_[t]);
      }
      data_.push_back(m);
    }
  }
}

std::string Alignment::sequence(std::size_t t) const {
  std::string out(columns_, '?');
  for (std::size_t c = 0; c < columns_; ++c) out[c] = mask_to_char(at(t, c));
  return out;
}

std::size_t Alignment::taxon_index(const std::string& name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  PLF_CHECK(it != names_.end(), "unknown taxon name: " + name);
  return static_cast<std::size_t>(it - names_.begin());
}

Alignment Alignment::parse_fasta(const std::string& text) {
  std::vector<std::string> names;
  std::vector<std::string> seqs;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // blank / whitespace-only
    if (first != 0) line = line.substr(first);
    if (line[0] == '>') {
      // Name is the first token after '>'.
      std::istringstream hdr(line.substr(1));
      std::string name;
      hdr >> name;
      if (name.empty()) throw ParseError("FASTA: empty sequence name");
      names.push_back(name);
      seqs.emplace_back();
    } else {
      if (names.empty()) throw ParseError("FASTA: sequence data before header");
      for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) seqs.back() += c;
      }
    }
  }
  if (names.empty()) throw ParseError("FASTA: no sequences found");
  return Alignment(std::move(names), std::move(seqs));
}

Alignment Alignment::parse_phylip(const std::string& text) {
  std::istringstream in(text);
  std::size_t n = 0, cols = 0;
  if (!(in >> n >> cols)) throw ParseError("PHYLIP: missing header counts");
  std::vector<std::string> names(n);
  std::vector<std::string> seqs(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (!(in >> names[t])) throw ParseError("PHYLIP: truncated taxon block");
    std::string& s = seqs[t];
    while (s.size() < cols) {
      std::string chunk;
      if (!(in >> chunk)) throw ParseError("PHYLIP: truncated sequence for " + names[t]);
      s += chunk;
    }
    if (s.size() != cols) throw ParseError("PHYLIP: sequence longer than header for " + names[t]);
  }
  return Alignment(std::move(names), std::move(seqs));
}

Alignment Alignment::read_file(const std::string& path) {
  std::ifstream f(path);
  PLF_CHECK(f.good(), "cannot open alignment file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  // Sniff: FASTA starts with '>'; PHYLIP with two integers.
  const auto first = text.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && text[first] == '>') return parse_fasta(text);
  return parse_phylip(text);
}

void Alignment::write_fasta(std::ostream& os) const {
  for (std::size_t t = 0; t < n_taxa(); ++t) {
    os << '>' << names_[t] << '\n';
    const std::string seq = sequence(t);
    for (std::size_t i = 0; i < seq.size(); i += 70) {
      os << seq.substr(i, 70) << '\n';
    }
  }
}

void Alignment::write_phylip(std::ostream& os) const {
  os << n_taxa() << ' ' << n_columns() << '\n';
  for (std::size_t t = 0; t < n_taxa(); ++t) {
    os << names_[t] << ' ' << sequence(t) << '\n';
  }
}

}  // namespace plf::phylo
