#include "phylo/tree.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <iomanip>

#include "util/error.hpp"
#include "util/serialize.hpp"

namespace plf::phylo {

namespace {
constexpr double kDefaultBranchLength = 0.1;

/// Parse-tree node for Newick input.
struct PNode {
  std::string name;
  double length = kDefaultBranchLength;
  bool has_length = false;
  std::vector<int> children;
};

class NewickParser {
 public:
  explicit NewickParser(const std::string& text) : text_(text) {}

  /// Returns index of the top node in `nodes`.
  int parse(std::vector<PNode>& nodes) {
    skip_ws();
    const int top = parse_subtree(nodes);
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != ';') {
      throw ParseError("Newick: expected ';' at position " + std::to_string(pos_));
    }
    return top;
  }

 private:
  int parse_subtree(std::vector<PNode>& nodes) {
    skip_ws();
    const int id = static_cast<int>(nodes.size());
    nodes.emplace_back();
    if (peek() == '(') {
      ++pos_;
      for (;;) {
        const int child = parse_subtree(nodes);
        nodes[id].children.push_back(child);
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        if (peek() == ')') {
          ++pos_;
          break;
        }
        throw ParseError("Newick: expected ',' or ')' at position " +
                         std::to_string(pos_));
      }
      nodes[id].name = parse_label();  // optional internal label, ignored later
    } else {
      nodes[id].name = parse_label();
      if (nodes[id].name.empty()) {
        throw ParseError("Newick: expected leaf name at position " +
                         std::to_string(pos_));
      }
    }
    skip_ws();
    if (peek() == ':') {
      ++pos_;
      nodes[id].length = parse_number();
      nodes[id].has_length = true;
    }
    return id;
  }

  std::string parse_label() {
    skip_ws();
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ':' || c == ',' || c == ')' || c == '(' || c == ';' ||
          std::isspace(static_cast<unsigned char>(c))) {
        break;
      }
      out += c;
      ++pos_;
    }
    return out;
  }

  double parse_number() {
    skip_ws();
    std::size_t consumed = 0;
    double v = 0.0;
    try {
      v = std::stod(text_.substr(pos_), &consumed);
    } catch (const std::exception&) {
      throw ParseError("Newick: bad branch length at position " +
                       std::to_string(pos_));
    }
    pos_ += consumed;
    return v;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

/// Undirected view of the tree: vertex adjacency with edge lengths.
struct Tree::Adjacency {
  struct Edge {
    int to;
    double len;
  };
  std::vector<std::vector<Edge>> adj;
  std::vector<int> leaf_taxon;  // per vertex: taxon index or kNoNode

  int add_vertex(int taxon = kNoNode) {
    adj.emplace_back();
    leaf_taxon.push_back(taxon);
    return static_cast<int>(adj.size()) - 1;
  }

  void add_edge(int a, int b, double len) {
    adj[static_cast<std::size_t>(a)].push_back({b, len});
    adj[static_cast<std::size_t>(b)].push_back({a, len});
  }

  void remove_edge(int a, int b) {
    auto drop = [this](int from, int to) {
      auto& v = adj[static_cast<std::size_t>(from)];
      v.erase(std::remove_if(v.begin(), v.end(),
                             [to](const Edge& e) { return e.to == to; }),
              v.end());
    };
    drop(a, b);
    drop(b, a);
  }

  std::size_t degree(int v) const { return adj[static_cast<std::size_t>(v)].size(); }

  /// Collapse every nameless degree-2 vertex (this removes the artificial
  /// root of a rooted Newick string, merging the two incident branches).
  void collapse_degree_two() {
    for (int v = 0; v < static_cast<int>(adj.size()); ++v) {
      if (leaf_taxon[static_cast<std::size_t>(v)] != kNoNode) continue;
      while (degree(v) == 2) {
        const Edge e0 = adj[static_cast<std::size_t>(v)][0];
        const Edge e1 = adj[static_cast<std::size_t>(v)][1];
        remove_edge(v, e0.to);
        remove_edge(v, e1.to);
        add_edge(e0.to, e1.to, e0.len + e1.len);
      }
    }
  }
};

Tree Tree::from_newick(const std::string& text, int outgroup_taxon) {
  return from_newick(text, std::vector<std::string>{}, outgroup_taxon);
}

Tree Tree::from_newick(const std::string& text,
                       const std::vector<std::string>& taxon_names,
                       int outgroup_taxon) {
  std::vector<PNode> pnodes;
  NewickParser parser(text);
  const int top = parser.parse(pnodes);

  // Assign taxon indices.
  std::vector<std::string> names = taxon_names;
  auto taxon_of = [&names](const std::string& name) -> int {
    const auto it = std::find(names.begin(), names.end(), name);
    if (it != names.end()) return static_cast<int>(it - names.begin());
    return kNoNode;
  };

  Adjacency adj;
  std::vector<int> vertex_of(pnodes.size(), kNoNode);
  for (std::size_t i = 0; i < pnodes.size(); ++i) {
    const bool leaf = pnodes[i].children.empty();
    int taxon = kNoNode;
    if (leaf) {
      taxon = taxon_of(pnodes[i].name);
      if (taxon == kNoNode) {
        if (!taxon_names.empty()) {
          throw ParseError("Newick leaf '" + pnodes[i].name +
                           "' not found in taxon name list");
        }
        names.push_back(pnodes[i].name);
        taxon = static_cast<int>(names.size()) - 1;
      }
    }
    vertex_of[i] = adj.add_vertex(taxon);
  }
  for (std::size_t i = 0; i < pnodes.size(); ++i) {
    for (int c : pnodes[i].children) {
      adj.add_edge(vertex_of[i], vertex_of[static_cast<std::size_t>(c)],
                   pnodes[static_cast<std::size_t>(c)].length);
    }
  }
  (void)top;

  adj.collapse_degree_two();
  return from_adjacency(adj, std::move(names), outgroup_taxon);
}

Tree Tree::from_adjacency(const Adjacency& adj,
                          std::vector<std::string> taxon_names,
                          int outgroup_taxon) {
  const std::size_t n_taxa = taxon_names.size();
  PLF_CHECK(n_taxa >= 3, "tree needs at least 3 taxa");
  PLF_CHECK(outgroup_taxon >= 0 && outgroup_taxon < static_cast<int>(n_taxa),
            "outgroup taxon out of range");

  // Locate vertices and check degrees.
  std::vector<int> leaf_vertex(n_taxa, kNoNode);
  std::size_t n_internal_vertices = 0;
  for (int v = 0; v < static_cast<int>(adj.adj.size()); ++v) {
    const int taxon = adj.leaf_taxon[static_cast<std::size_t>(v)];
    if (taxon != kNoNode) {
      PLF_CHECK(adj.degree(v) == 1, "leaf vertex must have degree 1");
      PLF_CHECK(leaf_vertex[static_cast<std::size_t>(taxon)] == kNoNode,
                "duplicate taxon in tree: " + taxon_names[static_cast<std::size_t>(taxon)]);
      leaf_vertex[static_cast<std::size_t>(taxon)] = v;
    } else if (adj.degree(v) > 0) {
      PLF_CHECK(adj.degree(v) == 3,
                "internal vertex of unrooted binary tree must have degree 3 (got " +
                    std::to_string(adj.degree(v)) + ")");
      ++n_internal_vertices;
    }
  }
  for (std::size_t t = 0; t < n_taxa; ++t) {
    PLF_CHECK(leaf_vertex[t] != kNoNode,
              "taxon missing from tree: " + taxon_names[t]);
  }
  PLF_CHECK(n_internal_vertices == n_taxa - 2,
            "unexpected internal vertex count");

  Tree tree;
  tree.taxon_names_ = std::move(taxon_names);
  tree.nodes_.resize(2 * n_taxa - 2);
  tree.leaf_of_.resize(n_taxa);
  // Leaves occupy node ids [0, n_taxa) with id == taxon index.
  for (std::size_t t = 0; t < n_taxa; ++t) {
    tree.leaf_of_[t] = static_cast<int>(t);
    tree.nodes_[t].taxon = static_cast<int>(t);
  }

  const int out_vertex = leaf_vertex[static_cast<std::size_t>(outgroup_taxon)];
  const auto& out_edges = adj.adj[static_cast<std::size_t>(out_vertex)];
  const int root_vertex = out_edges[0].to;
  const double out_len = out_edges[0].len;

  tree.outgroup_ = static_cast<int>(outgroup_taxon);

  int next_internal = static_cast<int>(n_taxa);
  // Iterative DFS assigning node ids; each frame: (vertex, parent_vertex,
  // node_id already allocated for this vertex).
  struct Frame {
    int vertex;
    int parent_vertex;
    int node_id;
  };
  auto node_id_for = [&](int vertex) -> int {
    const int taxon = adj.leaf_taxon[static_cast<std::size_t>(vertex)];
    if (taxon != kNoNode) return tree.leaf_of_[static_cast<std::size_t>(taxon)];
    return next_internal++;
  };

  const int root_id = node_id_for(root_vertex);
  tree.root_ = root_id;
  tree.nodes_[static_cast<std::size_t>(root_id)].parent = kNoNode;

  // Outgroup leaf hangs off the root.
  auto& out_node = tree.nodes_[static_cast<std::size_t>(tree.outgroup_)];
  out_node.parent = root_id;
  out_node.length = out_len;

  std::vector<Frame> stack{{root_vertex, out_vertex, root_id}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    TreeNode& n = tree.nodes_[static_cast<std::size_t>(f.node_id)];
    if (adj.leaf_taxon[static_cast<std::size_t>(f.vertex)] != kNoNode) continue;

    int child_slot = 0;
    for (const auto& e : adj.adj[static_cast<std::size_t>(f.vertex)]) {
      if (e.to == f.parent_vertex) continue;
      const int cid = node_id_for(e.to);
      TreeNode& c = tree.nodes_[static_cast<std::size_t>(cid)];
      c.parent = f.node_id;
      c.length = e.len;
      if (child_slot == 0) {
        n.left = cid;
      } else {
        n.right = cid;
      }
      ++child_slot;
      stack.push_back({e.to, f.vertex, cid});
    }
    PLF_CHECK(child_slot == 2, "internal node must have exactly two children");
  }

  tree.validate();
  return tree;
}

Tree::Adjacency Tree::to_adjacency() const {
  Adjacency adj;
  // Vertex ids mirror node ids.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    adj.add_vertex(nodes_[i].taxon);
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& n = nodes_[i];
    if (n.parent != kNoNode) {
      adj.add_edge(static_cast<int>(i), n.parent, n.length);
    }
  }
  return adj;
}

Tree Tree::rerooted(int outgroup_taxon) const {
  return from_adjacency(to_adjacency(), taxon_names_, outgroup_taxon);
}

void Tree::write_subtree(int id, std::string& out, int precision) const {
  const TreeNode& n = node(id);
  if (n.is_leaf()) {
    out += taxon_names_[static_cast<std::size_t>(n.taxon)];
  } else {
    out += '(';
    write_subtree(n.left, out, precision);
    out += ',';
    write_subtree(n.right, out, precision);
    out += ')';
  }
  std::ostringstream os;
  os << ':' << std::setprecision(precision) << n.length;
  out += os.str();
}

std::string Tree::to_newick(int precision) const {
  // Unrooted convention: trifurcation at the root internal node with the
  // outgroup listed first. The outgroup's stored length is the full length
  // of the root<->outgroup branch.
  std::string out = "(";
  out += taxon_names_[static_cast<std::size_t>(node(outgroup_).taxon)];
  {
    std::ostringstream os;
    os << ':' << std::setprecision(precision) << node(outgroup_).length;
    out += os.str();
  }
  out += ',';
  write_subtree(node(root_).left, out, precision);
  out += ',';
  write_subtree(node(root_).right, out, precision);
  out += ");";
  return out;
}

std::vector<int> Tree::postorder_internals() const {
  std::vector<int> order;
  order.reserve(n_internal());
  // Two-phase iterative postorder over internal nodes only.
  std::vector<int> stack{root_};
  std::vector<int> reversed;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    reversed.push_back(id);
    const TreeNode& n = node(id);
    if (!node(n.left).is_leaf()) stack.push_back(n.left);
    if (!node(n.right).is_leaf()) stack.push_back(n.right);
  }
  order.assign(reversed.rbegin(), reversed.rend());
  return order;
}

std::vector<int> Tree::branch_nodes() const {
  std::vector<int> out;
  out.reserve(n_nodes() - 1);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].parent != kNoNode) out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> Tree::internal_edge_nodes() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf() && nodes_[i].parent != kNoNode) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

void Tree::set_branch_length(int id, double len) {
  PLF_CHECK(len >= 0.0, "branch length must be nonnegative");
  PLF_CHECK(nodes_[static_cast<std::size_t>(id)].parent != kNoNode,
            "the root carries no branch");
  nodes_[static_cast<std::size_t>(id)].length = len;
}

double Tree::total_length() const {
  double sum = 0.0;
  for (const auto& n : nodes_) {
    if (n.parent != kNoNode) sum += n.length;
  }
  return sum;
}

void Tree::nni(int v, bool swap_left) {
  TreeNode& nv = nodes_[static_cast<std::size_t>(v)];
  PLF_CHECK(!nv.is_leaf() && nv.parent != kNoNode,
            "NNI requires an internal non-root node");
  const int u = nv.parent;
  TreeNode& nu = nodes_[static_cast<std::size_t>(u)];

  const bool v_is_left = (nu.left == v);
  const int w = v_is_left ? nu.right : nu.left;  // sibling of v
  const int c = swap_left ? nv.left : nv.right;  // child of v to swap out

  // Reattach: c becomes u's child in w's slot; w becomes v's child in c's slot.
  if (v_is_left) {
    nu.right = c;
  } else {
    nu.left = c;
  }
  if (swap_left) {
    nv.left = w;
  } else {
    nv.right = w;
  }
  nodes_[static_cast<std::size_t>(c)].parent = u;
  nodes_[static_cast<std::size_t>(w)].parent = v;
}

bool Tree::in_subtree(int ancestor, int descendant) const {
  for (int id = descendant; id != kNoNode; id = node(id).parent) {
    if (id == ancestor) return true;
    if (id == root_) break;
  }
  return false;
}

std::vector<int> Tree::spr_valid_targets(int s) const {
  std::vector<int> out;
  if (s == root_ || s == outgroup_) return out;
  const int u = node(s).parent;
  if (u == root_ || u == kNoNode) return out;  // pruning would break the root
  const TreeNode& nu = node(u);
  const int w = (nu.left == s) ? nu.right : nu.left;
  for (std::size_t id = 0; id < nodes_.size(); ++id) {
    const int t = static_cast<int>(id);
    if (nodes_[id].parent == kNoNode) continue;  // the root has no branch
    if (t == outgroup_) continue;  // the root<->outgroup branch is special
    if (t == u || t == w) continue;  // would reattach in place
    if (in_subtree(s, t)) continue;  // cannot graft inside the moved subtree
    out.push_back(t);
  }
  return out;
}

Tree::SprUndo Tree::spr(int s, int target, double split_x) {
  const int u = node(s).parent;
  PLF_CHECK(s != root_ && s != outgroup_ && u != kNoNode && u != root_,
            "spr: subtree cannot be pruned here");
  TreeNode& nu = nodes_[static_cast<std::size_t>(u)];
  const int w = (nu.left == s) ? nu.right : nu.left;
  PLF_CHECK(target != u && target != w && target != outgroup_ &&
                node(target).parent != kNoNode && !in_subtree(s, target),
            "spr: invalid regraft target");
  TreeNode& nw = nodes_[static_cast<std::size_t>(w)];
  TreeNode& nt = nodes_[static_cast<std::size_t>(target)];
  PLF_CHECK(split_x > 0.0 && split_x < nt.length,
            "spr: split must fall inside the target branch");

  SprUndo undo;
  undo.s = s;
  undo.u = u;
  undo.w = w;
  undo.target = target;
  undo.u_length = nu.length;
  undo.w_length = nw.length;
  undo.t_length = nt.length;

  // Detach u (with s below it): w takes u's place under p.
  const int p = nu.parent;
  TreeNode& np = nodes_[static_cast<std::size_t>(p)];
  if (np.left == u) {
    np.left = w;
  } else {
    np.right = w;
  }
  nw.parent = p;
  nw.length += nu.length;

  // Insert u into the branch above target: q -- u(split_x) -- target(rest).
  const int q = nt.parent;
  TreeNode& nq = nodes_[static_cast<std::size_t>(q)];
  if (nq.left == target) {
    nq.left = u;
  } else {
    nq.right = u;
  }
  nu.parent = q;
  nu.length = split_x;
  if (nu.left == s) {
    nu.right = target;
  } else {
    nu.left = target;
  }
  nt.parent = u;
  nt.length -= split_x;
  return undo;
}

void Tree::undo_spr(const SprUndo& undo) {
  TreeNode& nu = nodes_[static_cast<std::size_t>(undo.u)];
  TreeNode& nw = nodes_[static_cast<std::size_t>(undo.w)];
  TreeNode& nt = nodes_[static_cast<std::size_t>(undo.target)];

  // Detach u from above target, restoring target under its old parent q.
  const int q = nu.parent;
  TreeNode& nq = nodes_[static_cast<std::size_t>(q)];
  if (nq.left == undo.u) {
    nq.left = undo.target;
  } else {
    nq.right = undo.target;
  }
  nt.parent = q;
  nt.length = undo.t_length;

  // Reinsert u above w, under w's current parent.
  const int p = nw.parent;
  TreeNode& np = nodes_[static_cast<std::size_t>(p)];
  if (np.left == undo.w) {
    np.left = undo.u;
  } else {
    np.right = undo.u;
  }
  nu.parent = p;
  nu.length = undo.u_length;
  if (nu.left == undo.s) {
    nu.right = undo.w;
  } else {
    nu.left = undo.w;
  }
  nw.parent = undo.u;
  nw.length = undo.w_length;
}

void Tree::validate() const {
  PLF_CHECK(n_taxa() >= 3, "tree must have at least 3 taxa");
  PLF_CHECK(nodes_.size() == 2 * n_taxa() - 2, "node count mismatch");
  PLF_CHECK(root_ != kNoNode && !node(root_).is_leaf(), "bad root");
  PLF_CHECK(node(root_).parent == kNoNode, "root must have no parent");
  PLF_CHECK(outgroup_ != kNoNode && node(outgroup_).is_leaf(), "bad outgroup");
  PLF_CHECK(node(outgroup_).parent == root_, "outgroup must hang off the root");

  std::size_t leaves = 0;
  std::size_t internals = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& n = nodes_[i];
    const int id = static_cast<int>(i);
    if (n.is_leaf()) {
      ++leaves;
      PLF_CHECK(n.left == kNoNode && n.right == kNoNode, "leaf with children");
      PLF_CHECK(leaf_of_[static_cast<std::size_t>(n.taxon)] == id,
                "leaf_of mapping broken");
    } else {
      ++internals;
      PLF_CHECK(n.left != kNoNode && n.right != kNoNode,
                "internal node missing children");
      PLF_CHECK(node(n.left).parent == id && node(n.right).parent == id,
                "parent/child pointers inconsistent");
    }
    if (n.parent != kNoNode) {
      PLF_CHECK(n.length >= 0.0, "negative branch length");
      const TreeNode& p = node(n.parent);
      const bool is_child = (p.left == id || p.right == id);
      const bool is_outgroup = (id == outgroup_ && n.parent == root_);
      PLF_CHECK(is_child || is_outgroup, "dangling parent pointer");
    }
  }
  PLF_CHECK(leaves == n_taxa(), "leaf count mismatch");
  PLF_CHECK(internals == n_taxa() - 2, "internal count mismatch");

  // Reachability: every node is visited exactly once from the root.
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<int> stack{root_};
  seen[static_cast<std::size_t>(outgroup_)] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    PLF_CHECK(!seen[static_cast<std::size_t>(id)], "cycle detected");
    seen[static_cast<std::size_t>(id)] = true;
    ++visited;
    const TreeNode& n = node(id);
    if (!n.is_leaf()) {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  PLF_CHECK(visited == nodes_.size(), "tree not fully connected");
}

void Tree::save(util::BinaryWriter& w) const {
  w.section("TREE");
  w.u64(nodes_.size());
  for (const TreeNode& n : nodes_) {
    w.i64(n.parent);
    w.i64(n.left);
    w.i64(n.right);
    w.f64(n.length);
    w.i64(n.taxon);
  }
  w.u64(leaf_of_.size());
  for (int id : leaf_of_) w.i64(id);
  w.u64(taxon_names_.size());
  for (const std::string& name : taxon_names_) w.str(name);
  w.i64(root_);
  w.i64(outgroup_);
}

Tree Tree::load(util::BinaryReader& r) {
  r.section("TREE");
  Tree tree;
  tree.nodes_.resize(r.u64());
  for (TreeNode& n : tree.nodes_) {
    n.parent = static_cast<int>(r.i64());
    n.left = static_cast<int>(r.i64());
    n.right = static_cast<int>(r.i64());
    n.length = r.f64();
    n.taxon = static_cast<int>(r.i64());
  }
  tree.leaf_of_.resize(r.u64());
  for (int& id : tree.leaf_of_) id = static_cast<int>(r.i64());
  tree.taxon_names_.resize(r.u64());
  for (std::string& name : tree.taxon_names_) name = r.str();
  tree.root_ = static_cast<int>(r.i64());
  tree.outgroup_ = static_cast<int>(r.i64());
  tree.validate();
  return tree;
}

bool Tree::same_topology(const Tree& other) const {
  if (n_taxa() != other.n_taxa()) return false;

  // Taxon indices are assigned per tree (e.g. by first occurrence in a
  // Newick string), so splits are compared in a shared index space keyed by
  // taxon NAME: this tree uses identity, `other` maps through its names.
  std::vector<int> other_map(other.n_taxa());
  for (std::size_t t = 0; t < other.n_taxa(); ++t) {
    const auto it = std::find(taxon_names_.begin(), taxon_names_.end(),
                              other.taxon_names_[t]);
    if (it == taxon_names_.end()) return false;  // different taxon sets
    other_map[t] = static_cast<int>(it - taxon_names_.begin());
  }
  std::vector<int> identity(n_taxa());
  for (std::size_t t = 0; t < n_taxa(); ++t) identity[t] = static_cast<int>(t);

  // Collect the nontrivial splits of each tree as canonical taxon bitsets.
  auto splits = [](const Tree& t, const std::vector<int>& taxon_map) {
    const std::size_t words = (t.n_taxa() + 63) / 64;
    std::vector<std::vector<std::uint64_t>> below(
        t.n_nodes(), std::vector<std::uint64_t>(words, 0));
    for (std::size_t i = 0; i < t.n_nodes(); ++i) {
      const TreeNode& n = t.nodes_[i];
      if (n.is_leaf()) {
        const std::size_t mapped =
            static_cast<std::size_t>(taxon_map[static_cast<std::size_t>(n.taxon)]);
        below[i][mapped / 64] |= std::uint64_t{1} << (mapped % 64);
      }
    }
    std::set<std::vector<std::uint64_t>> out;
    for (int id : t.postorder_internals()) {
      const TreeNode& n = t.node(id);
      auto& mine = below[static_cast<std::size_t>(id)];
      for (std::size_t w = 0; w < mine.size(); ++w) {
        mine[w] = below[static_cast<std::size_t>(n.left)][w] |
                  below[static_cast<std::size_t>(n.right)][w];
      }
      if (id == t.root()) continue;  // the root's split is the trivial full set
      // Canonical form: complement if taxon 0's bit is set, so each split has
      // one unique representation.
      std::vector<std::uint64_t> key = mine;
      if (key[0] & 1) {
        for (std::size_t w = 0; w < key.size(); ++w) key[w] = ~key[w];
        // Clear padding bits beyond n_taxa.
        const std::size_t rem = t.n_taxa() % 64;
        if (rem != 0) key.back() &= (std::uint64_t{1} << rem) - 1;
      }
      out.insert(std::move(key));
    }
    return out;
  };

  return splits(*this, identity) == splits(other, other_map);
}

}  // namespace plf::phylo
