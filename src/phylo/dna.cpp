#include "phylo/dna.hpp"

#include <cctype>

namespace plf::phylo {

StateMask char_to_mask(char c) {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': return kMaskA;
    case 'C': return kMaskC;
    case 'G': return kMaskG;
    case 'T':
    case 'U': return kMaskT;
    case 'R': return kMaskA | kMaskG;
    case 'Y': return kMaskC | kMaskT;
    case 'S': return kMaskC | kMaskG;
    case 'W': return kMaskA | kMaskT;
    case 'K': return kMaskG | kMaskT;
    case 'M': return kMaskA | kMaskC;
    case 'B': return kMaskC | kMaskG | kMaskT;
    case 'D': return kMaskA | kMaskG | kMaskT;
    case 'H': return kMaskA | kMaskC | kMaskT;
    case 'V': return kMaskA | kMaskC | kMaskG;
    case 'N':
    case 'X':
    case '?':
    case 'O':
    case '-':
    case '.': return kGapMask;
    default: return 0;
  }
}

char mask_to_char(StateMask m) {
  static constexpr char kTable[kNumMasks] = {
      '?',  // 0000 invalid
      'A',  // 0001
      'C',  // 0010
      'M',  // 0011
      'G',  // 0100
      'R',  // 0101
      'S',  // 0110
      'V',  // 0111
      'T',  // 1000
      'W',  // 1001
      'Y',  // 1010
      'H',  // 1011
      'K',  // 1100
      'D',  // 1101
      'B',  // 1110
      '-',  // 1111
  };
  return kTable[m & 15];
}

const std::array<float, kNumStates>& tip_row(StateMask m) {
  static const auto kRows = [] {
    std::array<std::array<float, kNumStates>, kNumMasks> rows{};
    for (std::size_t mask = 0; mask < kNumMasks; ++mask) {
      for (std::size_t s = 0; s < kNumStates; ++s) {
        rows[mask][s] = (mask >> s) & 1u ? 1.0f : 0.0f;
      }
    }
    return rows;
  }();
  return kRows[m & 15];
}

}  // namespace plf::phylo
