#include "phylo/patterns.hpp"

#include <string>
#include <unordered_map>

#include "util/error.hpp"

namespace plf::phylo {

namespace {

/// Column of masks as a hashable key.
std::string column_key(const Alignment& aln, std::size_t c) {
  std::string key(aln.n_taxa(), '\0');
  for (std::size_t t = 0; t < aln.n_taxa(); ++t) {
    key[t] = static_cast<char>(aln.at(t, c));
  }
  return key;
}

struct Builder {
  std::unordered_map<std::string, std::size_t> index;
  std::vector<std::string> patterns;  // in first-occurrence order
  std::vector<std::uint32_t> weights;

  /// Returns true if the column was new.
  bool add(const Alignment& aln, std::size_t c) {
    std::string key = column_key(aln, c);
    auto [it, inserted] = index.try_emplace(std::move(key), patterns.size());
    if (inserted) {
      patterns.push_back(it->first);
      weights.push_back(1);
      return true;
    }
    ++weights[it->second];
    return false;
  }
};

}  // namespace

PatternMatrix PatternMatrix::compress(const Alignment& aln) {
  Builder b;
  for (std::size_t c = 0; c < aln.n_columns(); ++c) b.add(aln, c);

  PatternMatrix out;
  out.names_ = aln.names();
  out.weights_.assign(b.weights.begin(), b.weights.end());
  out.init_storage(aln.n_taxa(), b.patterns.size());
  for (std::size_t p = 0; p < out.n_patterns_; ++p) {
    for (std::size_t t = 0; t < aln.n_taxa(); ++t) {
      out.cell(t, p) = static_cast<StateMask>(b.patterns[p][t]);
    }
  }
  return out;
}

PatternMatrix PatternMatrix::distinct_prefix(const Alignment& aln,
                                             std::size_t count) {
  Builder b;
  for (std::size_t c = 0; c < aln.n_columns() && b.patterns.size() < count; ++c) {
    b.add(aln, c);
  }
  PLF_CHECK(b.patterns.size() == count,
            "alignment has fewer distinct patterns than requested (" +
                std::to_string(b.patterns.size()) + " < " +
                std::to_string(count) + ")");

  PatternMatrix out;
  out.names_ = aln.names();
  out.weights_.assign(count, 1);  // extracted columns count once, as in the paper
  out.init_storage(aln.n_taxa(), count);
  for (std::size_t p = 0; p < count; ++p) {
    for (std::size_t t = 0; t < aln.n_taxa(); ++t) {
      out.cell(t, p) = static_cast<StateMask>(b.patterns[p][t]);
    }
  }
  return out;
}

PatternMatrix PatternMatrix::from_patterns(
    std::vector<std::string> names,
    const std::vector<std::vector<StateMask>>& patterns,
    std::vector<std::uint32_t> weights) {
  PLF_CHECK(patterns.size() == weights.size(),
            "from_patterns: pattern/weight count mismatch");
  PLF_CHECK(!patterns.empty(), "from_patterns: no patterns");
  PatternMatrix out;
  out.names_ = std::move(names);
  out.weights_.assign(weights.begin(), weights.end());
  out.init_storage(out.names_.size(), patterns.size());
  for (std::size_t p = 0; p < out.n_patterns_; ++p) {
    PLF_CHECK(patterns[p].size() == out.names_.size(),
              "from_patterns: column length != taxon count");
    for (std::size_t t = 0; t < out.names_.size(); ++t) {
      out.cell(t, p) = patterns[p][t];
    }
  }
  return out;
}

std::uint64_t PatternMatrix::total_weight() const {
  std::uint64_t sum = 0;
  for (auto w : weights_) sum += w;
  return sum;
}

}  // namespace plf::phylo
