// Unrooted binary phylogenetic trees.
//
// Internally the unrooted tree is stored the way MrBayes evaluates it: rooted
// at a designated *outgroup leaf*. The outgroup's single neighbor becomes the
// "root" internal node; every other node hangs below it with a `parent`
// pointer and the length of the branch to that parent. The root internal
// node therefore has three neighbors — its two children and the outgroup —
// which is exactly the three-way combination CondLikeRoot performs (§3.1).
//
// For n taxa (n >= 3) there are n leaves and n-2 internal nodes; every
// internal node has exactly two children.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace plf::util {
class BinaryWriter;
class BinaryReader;
}  // namespace plf::util

namespace plf::phylo {

inline constexpr int kNoNode = -1;

struct TreeNode {
  int parent = kNoNode;  ///< kNoNode only for the root internal node
  int left = kNoNode;    ///< kNoNode for leaves
  int right = kNoNode;   ///< kNoNode for leaves
  double length = 0.0;   ///< branch to parent (unused for the root)
  int taxon = kNoNode;   ///< taxon index for leaves; kNoNode for internals

  bool is_leaf() const { return taxon != kNoNode; }
};

class Tree {
 public:
  Tree() = default;

  /// Parse a Newick string. Rooted (bifurcating top) inputs are unrooted;
  /// the tree is then rooted at the leaf of taxon `outgroup_taxon`.
  /// Taxon indices are assigned by first occurrence in the string.
  static Tree from_newick(const std::string& text, int outgroup_taxon = 0);

  /// Same, but taxon indices follow the given name order (e.g. alignment
  /// row order). All leaf names must appear in `taxon_names`.
  static Tree from_newick(const std::string& text,
                          const std::vector<std::string>& taxon_names,
                          int outgroup_taxon = 0);

  /// Serialize as an unrooted Newick string with the root trifurcation
  /// convention: (outgroup:len, left..., right...);
  std::string to_newick(int precision = 6) const;

  std::size_t n_taxa() const { return taxon_names_.size(); }
  std::size_t n_nodes() const { return nodes_.size(); }
  std::size_t n_internal() const { return n_taxa() >= 2 ? n_taxa() - 2 : 0; }
  std::size_t n_branches() const { return n_nodes() >= 1 ? n_nodes() - 1 : 0; }

  const TreeNode& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  int root() const { return root_; }
  int outgroup() const { return outgroup_; }

  /// Node id of the leaf carrying taxon `t`.
  int leaf_of(int t) const { return leaf_of_[static_cast<std::size_t>(t)]; }

  const std::string& taxon_name(int t) const {
    return taxon_names_[static_cast<std::size_t>(t)];
  }
  const std::vector<std::string>& taxon_names() const { return taxon_names_; }

  /// Internal node ids in children-before-parent order; last element is the
  /// root. This is the PLF evaluation order.
  std::vector<int> postorder_internals() const;

  /// All node ids with a parent (i.e. carrying a branch), leaves included.
  std::vector<int> branch_nodes() const;

  /// Ids of internal nodes (excluding the root) whose parent is also
  /// internal or the root — i.e. the internal branches eligible for NNI.
  std::vector<int> internal_edge_nodes() const;

  double branch_length(int id) const { return nodes_[static_cast<std::size_t>(id)].length; }
  void set_branch_length(int id, double len);

  /// Sum of all branch lengths.
  double total_length() const;

  /// Nearest-neighbor interchange across the branch above `v` (which must
  /// come from internal_edge_nodes()): swaps v's sibling with v's left or
  /// right child. Branch lengths travel with their subtrees.
  void nni(int v, bool swap_left);

  /// Record for exactly reversing one SPR move.
  struct SprUndo {
    int s = kNoNode;       ///< pruned subtree root
    int u = kNoNode;       ///< s's parent (the node that moved with it)
    int w = kNoNode;       ///< s's original sibling
    int target = kNoNode;  ///< branch the subtree was regrafted onto
    double u_length = 0.0; ///< original branch lengths
    double w_length = 0.0;
    double t_length = 0.0;
  };

  /// Subtree pruning and regrafting: detach the subtree rooted at `s`
  /// (together with its parent u; s's sibling w absorbs u's branch), then
  /// insert u into the branch above `target`, giving u the length `split_x`
  /// and leaving `target` the remainder. Requirements: `target` must come
  /// from spr_valid_targets(s) and 0 < split_x < branch_length(target) + the
  /// merged length... precisely: 0 < split_x < old branch_length(target).
  SprUndo spr(int s, int target, double split_x);

  /// Exactly reverse a previous spr() (the intervening state must be
  /// untouched apart from the move itself).
  void undo_spr(const SprUndo& undo);

  /// Nodes whose branch can receive the subtree rooted at `s`: any node
  /// with a parent, excluding s itself, s's subtree, s's parent and sibling,
  /// and the outgroup. Empty when s cannot be pruned (s == root, or s's
  /// parent is the root, or s is the outgroup).
  std::vector<int> spr_valid_targets(int s) const;

  /// True when `descendant` lies in the subtree rooted at `ancestor`.
  bool in_subtree(int ancestor, int descendant) const;

  /// A copy of this tree re-rooted at a different outgroup taxon (topology
  /// and branch lengths unchanged; used to test likelihood invariance).
  Tree rerooted(int outgroup_taxon) const;

  /// Check all structural invariants; throws plf::Error on violation.
  void validate() const;

  /// Topology-only equality (same splits), ignoring branch lengths.
  bool same_topology(const Tree& other) const;

  /// Exact binary round-trip for checkpoints: node ids, taxon names, and
  /// branch lengths as IEEE-754 bit patterns. to_newick() is NOT a substitute
  /// — decimal formatting loses low bits and node-id assignment on re-parse
  /// would renumber internals, invalidating per-node CLV state.
  void save(util::BinaryWriter& w) const;
  static Tree load(util::BinaryReader& r);

 private:
  struct Adjacency;
  static Tree from_adjacency(const Adjacency& adj,
                             std::vector<std::string> taxon_names,
                             int outgroup_taxon);
  Adjacency to_adjacency() const;

  void write_subtree(int id, std::string& out, int precision) const;

  std::vector<TreeNode> nodes_;
  std::vector<int> leaf_of_;              // taxon -> node id
  std::vector<std::string> taxon_names_;  // taxon -> name
  int root_ = kNoNode;
  int outgroup_ = kNoNode;
};

}  // namespace plf::phylo
