// Alignment partitioning for multi-model analyses (docs/SHARDING.md).
//
// Production phylogenetics rarely runs one model over one matrix: alignments
// are split into partitions (genes, codon positions) that evolve under
// independent substitution models, and the run's log likelihood is the sum of
// the per-partition log likelihoods. A PartitionSpec names contiguous column
// ranges of one alignment; exec::PartitionedEngine gives each range its own
// PlfEngine + GtrParams and batches all of their plans through the shared
// scheduler.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "phylo/alignment.hpp"

namespace plf::phylo {

/// One named, half-open column range [begin, end) of the parent alignment.
struct PartitionRange {
  std::string name;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t n_columns() const { return end - begin; }
};

class PartitionSpec {
 public:
  PartitionSpec() = default;

  /// Validates on construction: at least one range, each non-empty and
  /// in-bounds for `n_columns`, ranges disjoint and covering [0, n_columns)
  /// in order. Throws plf::Error otherwise.
  PartitionSpec(std::vector<PartitionRange> ranges, std::size_t n_columns);

  /// Split [0, n_columns) into `n_parts` near-equal contiguous ranges named
  /// part0..part{n-1} (remainder columns go to the first ranges).
  static PartitionSpec uniform(std::size_t n_columns, std::size_t n_parts);

  /// Parse "name1:0-499,name2:500-1203" (half-open would be unnatural on the
  /// command line, so the textual form is INCLUSIVE: 0-499 means columns
  /// [0, 500)). Ranges must arrive in order and cover the alignment.
  static PartitionSpec parse(const std::string& text, std::size_t n_columns);

  std::size_t n_parts() const { return ranges_.size(); }
  std::size_t n_columns() const { return n_columns_; }
  const PartitionRange& range(std::size_t i) const { return ranges_[i]; }
  const std::vector<PartitionRange>& ranges() const { return ranges_; }

  /// Per-partition alignments: the same taxa, each holding only its range's
  /// columns. Round-trips through IUPAC codes, which is exact (StateMask and
  /// IUPAC characters are in bijection).
  std::vector<Alignment> split(const Alignment& aln) const;

 private:
  std::vector<PartitionRange> ranges_;
  std::size_t n_columns_ = 0;
};

}  // namespace plf::phylo
