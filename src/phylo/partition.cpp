#include "phylo/partition.hpp"

#include "util/error.hpp"

namespace plf::phylo {

PartitionSpec::PartitionSpec(std::vector<PartitionRange> ranges,
                             std::size_t n_columns)
    : ranges_(std::move(ranges)), n_columns_(n_columns) {
  PLF_CHECK(!ranges_.empty(), "partition spec needs at least one range");
  std::size_t cursor = 0;
  for (const PartitionRange& r : ranges_) {
    PLF_CHECK(!r.name.empty(), "partition range needs a name");
    PLF_CHECK(r.begin == cursor,
              "partition '" + r.name + "' starts at column " +
                  std::to_string(r.begin) + ", expected " +
                  std::to_string(cursor) +
                  " (ranges must be in order, disjoint, and covering)");
    PLF_CHECK(r.end > r.begin, "partition '" + r.name + "' is empty");
    PLF_CHECK(r.end <= n_columns,
              "partition '" + r.name + "' ends past the alignment (" +
                  std::to_string(r.end) + " > " + std::to_string(n_columns) +
                  ")");
    cursor = r.end;
  }
  PLF_CHECK(cursor == n_columns,
            "partitions cover only " + std::to_string(cursor) + " of " +
                std::to_string(n_columns) + " columns");
}

PartitionSpec PartitionSpec::uniform(std::size_t n_columns,
                                     std::size_t n_parts) {
  PLF_CHECK(n_parts >= 1, "uniform partition needs at least one part");
  PLF_CHECK(n_columns >= n_parts,
            "uniform partition: more parts than columns");
  std::vector<PartitionRange> ranges;
  const std::size_t base = n_columns / n_parts;
  const std::size_t extra = n_columns % n_parts;
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < n_parts; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    ranges.push_back(
        {"part" + std::to_string(i), cursor, cursor + size});
    cursor += size;
  }
  return PartitionSpec(std::move(ranges), n_columns);
}

PartitionSpec PartitionSpec::parse(const std::string& text,
                                   std::size_t n_columns) {
  std::vector<PartitionRange> ranges;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(pos, comma - pos);
    const std::size_t colon = entry.find(':');
    const std::size_t dash = entry.find('-', colon + 1);
    if (colon == std::string::npos || dash == std::string::npos) {
      throw Error("partition entry '" + entry +
                  "' is not of the form name:first-last");
    }
    PartitionRange r;
    r.name = entry.substr(0, colon);
    try {
      r.begin = std::stoul(entry.substr(colon + 1, dash - colon - 1));
      // Inclusive last column on the command line -> half-open internally.
      r.end = std::stoul(entry.substr(dash + 1)) + 1;
    } catch (const std::exception&) {
      throw Error("partition entry '" + entry + "' has a bad column number");
    }
    ranges.push_back(std::move(r));
    pos = comma + 1;
  }
  return PartitionSpec(std::move(ranges), n_columns);
}

std::vector<Alignment> PartitionSpec::split(const Alignment& aln) const {
  PLF_CHECK(aln.n_columns() == n_columns_,
            "partition spec built for " + std::to_string(n_columns_) +
                " columns, alignment has " + std::to_string(aln.n_columns()));
  std::vector<Alignment> out;
  out.reserve(ranges_.size());
  for (const PartitionRange& r : ranges_) {
    std::vector<std::string> seqs;
    seqs.reserve(aln.n_taxa());
    for (std::size_t t = 0; t < aln.n_taxa(); ++t) {
      seqs.push_back(aln.sequence(t).substr(r.begin, r.n_columns()));
    }
    out.emplace_back(aln.names(), std::move(seqs));
  }
  return out;
}

}  // namespace plf::phylo
