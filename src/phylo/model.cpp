#include "phylo/model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace plf::phylo {

GtrParams GtrParams::jc69(double shape, std::size_t cats) {
  GtrParams p;
  p.gamma_shape = shape;
  p.n_rate_categories = cats;
  return p;
}

GtrParams GtrParams::hky85(double kappa, const std::array<double, 4>& pi,
                           double shape, std::size_t cats) {
  GtrParams p;
  // Transitions (A<->G, C<->T) get rate kappa; transversions rate 1.
  p.rates = {1.0, kappa, 1.0, 1.0, kappa, 1.0};
  p.pi = pi;
  p.gamma_shape = shape;
  p.n_rate_categories = cats;
  return p;
}

num::Matrix4 build_gtr_q(const std::array<double, 6>& rates,
                         const std::array<double, 4>& pi) {
  for (double r : rates) PLF_CHECK(r > 0.0, "GTR exchangeabilities must be positive");
  double pi_sum = 0.0;
  for (double p : pi) {
    PLF_CHECK(p > 0.0, "stationary frequencies must be positive");
    pi_sum += p;
  }
  PLF_CHECK(std::abs(pi_sum - 1.0) < 1e-9, "stationary frequencies must sum to 1");

  // Upper-triangle order AC, AG, AT, CG, CT, GT.
  num::Matrix4 q;
  const std::size_t pair_index[4][4] = {{0, 0, 1, 2},
                                        {0, 0, 3, 4},
                                        {1, 3, 0, 5},
                                        {2, 4, 5, 0}};
  for (std::size_t i = 0; i < 4; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      if (i == j) continue;
      q(i, j) = rates[pair_index[i][j]] * pi[j];
      row += q(i, j);
    }
    q(i, i) = -row;
  }

  // Normalize so the expected substitution rate at stationarity is 1
  // (branch lengths are then in expected substitutions per site).
  double mu = 0.0;
  for (std::size_t i = 0; i < 4; ++i) mu -= pi[i] * q(i, i);
  PLF_CHECK(mu > 0.0, "degenerate rate matrix");
  for (auto& v : q.m) v /= mu;
  return q;
}

TransitionMatrices::TransitionMatrices(std::size_t n_categories)
    : k_(n_categories), rm_(n_categories * 16, 0.0f), cm_(n_categories * 16, 0.0f) {}

num::Matrix4 TransitionMatrices::matrix(std::size_t k) const {
  num::Matrix4 m;
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      m(i, j) = static_cast<double>(rm_[k * 16 + i * 4 + j]);
  return m;
}

void TransitionMatrices::assign(const std::vector<num::Matrix4>& per_category) {
  PLF_CHECK(per_category.size() == k_, "category count mismatch");
  for (std::size_t k = 0; k < k_; ++k) {
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        const float v = static_cast<float>(per_category[k](i, j));
        rm_[k * 16 + i * 4 + j] = v;
        cm_[k * 16 + j * 4 + i] = v;
      }
    }
  }
}

SubstitutionModel::SubstitutionModel(const GtrParams& params)
    : params_(params),
      q_(build_gtr_q(params.rates, params.pi)),
      spectral_(q_, params.pi),
      category_rates_(num::discrete_gamma_rates(params.gamma_shape,
                                                params.n_rate_categories)) {
  PLF_CHECK(params.p_invariant >= 0.0 && params.p_invariant < 1.0,
            "p_invariant must be in [0, 1)");
}

TransitionMatrices SubstitutionModel::transition_matrices(double t) const {
  TransitionMatrices out(n_rate_categories());
  std::vector<num::Matrix4> per_cat(n_rate_categories());
  for (std::size_t k = 0; k < n_rate_categories(); ++k) {
    per_cat[k] = spectral_.transition_matrix(t * category_rates_[k]);
  }
  out.assign(per_cat);
  return out;
}

num::Matrix4 SubstitutionModel::transition_matrix(double t,
                                                  std::size_t category) const {
  PLF_CHECK(category < n_rate_categories(), "rate category out of range");
  return spectral_.transition_matrix(t * category_rates_[category]);
}

}  // namespace plf::phylo
