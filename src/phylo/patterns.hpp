// Site-pattern compression.
//
// "Identical alignment columns can be compressed into column patterns under
// ML, which are then assigned a respective higher per-pattern weight. Hence,
// in our experiments the number of columns corresponds exactly to the number
// of patterns and thus to the length of the compute-intensive for loops"
// (§4). This module performs that compression and also reproduces the
// paper's dataset-preparation step of extracting a fixed number of *distinct*
// columns from a longer simulated alignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "phylo/alignment.hpp"
#include "phylo/dna.hpp"
#include "util/aligned.hpp"

namespace plf::phylo {

/// Subtree-pattern keys: site-repeat identification (core/repeats) labels
/// every site at every node with a repeat-class id such that two sites share
/// an id iff the alignment columns restricted to the node's subtree are
/// identical. A node's key for one site packs the repeat-class ids of its two
/// children (tips contribute their 4-bit state mask); the root additionally
/// folds in the outgroup mask. Class ids are bounded by the pattern count
/// (< 2^32) and masks by 16, so both packings are collision-free.
inline std::uint64_t subtree_pattern_key(std::uint32_t left_class,
                                         std::uint32_t right_class) {
  return (static_cast<std::uint64_t>(left_class) << 32) | right_class;
}
inline std::uint64_t subtree_pattern_key_with_mask(std::uint32_t node_class,
                                                   StateMask mask) {
  return (static_cast<std::uint64_t>(node_class) << 4) | mask;
}

/// Hash functor for subtree-pattern keys. Keys are dense bit-packs, so the
/// identity hash would cluster buckets badly; this is the splitmix64
/// finalizer, which mixes every input bit into every output bit.
struct SubtreePatternHash {
  std::uint64_t operator()(std::uint64_t x) const noexcept {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
};

/// A compressed alignment: one column per *distinct* site pattern plus an
/// integer weight (multiplicity). This is the structure the PLF kernels
/// iterate over; its pattern count is the paper's "m".
class PatternMatrix {
 public:
  PatternMatrix() = default;

  /// Compress a full alignment into distinct patterns with multiplicities.
  /// Patterns keep first-occurrence order, matching how MrBayes compresses.
  static PatternMatrix compress(const Alignment& aln);

  /// Extract the first `count` distinct patterns of `aln`, all with weight 1
  /// (the paper's sub-alignment extraction; throws if the alignment has
  /// fewer distinct patterns than requested).
  static PatternMatrix distinct_prefix(const Alignment& aln, std::size_t count);

  /// Assemble directly from per-pattern columns (each of length n_taxa) and
  /// weights. Used by the dataset generator, which deduplicates on the fly.
  static PatternMatrix from_patterns(
      std::vector<std::string> names,
      const std::vector<std::vector<StateMask>>& patterns,
      std::vector<std::uint32_t> weights);

  std::size_t n_taxa() const { return names_.size(); }
  std::size_t n_patterns() const { return n_patterns_; }

  /// Total column count represented (sum of weights).
  std::uint64_t total_weight() const;

  const std::vector<std::string>& names() const { return names_; }
  const aligned_vector<std::uint32_t>& weights() const { return weights_; }

  /// Mask of taxon `t` at pattern `p`.
  StateMask at(std::size_t t, std::size_t p) const {
    return data_[t * stride_ + p];
  }

  /// Row of masks for one taxon (length n_patterns(); the row start is
  /// 128-byte aligned so simulated Cell DMA can stream tip masks directly).
  const StateMask* row(std::size_t t) const { return &data_[t * stride_]; }

 private:
  void init_storage(std::size_t n_taxa, std::size_t n_patterns) {
    n_patterns_ = n_patterns;
    stride_ = round_up(n_patterns, kDmaAlignBytes);
    data_.assign(n_taxa * stride_, kGapMask);
  }
  StateMask& cell(std::size_t t, std::size_t p) { return data_[t * stride_ + p]; }

  std::vector<std::string> names_;
  aligned_vector<StateMask> data_;  // row-major, rows padded to stride_
  aligned_vector<std::uint32_t> weights_;
  std::size_t n_patterns_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace plf::phylo
