// Site-pattern compression.
//
// "Identical alignment columns can be compressed into column patterns under
// ML, which are then assigned a respective higher per-pattern weight. Hence,
// in our experiments the number of columns corresponds exactly to the number
// of patterns and thus to the length of the compute-intensive for loops"
// (§4). This module performs that compression and also reproduces the
// paper's dataset-preparation step of extracting a fixed number of *distinct*
// columns from a longer simulated alignment.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "phylo/alignment.hpp"
#include "phylo/dna.hpp"
#include "util/aligned.hpp"

namespace plf::phylo {

/// A compressed alignment: one column per *distinct* site pattern plus an
/// integer weight (multiplicity). This is the structure the PLF kernels
/// iterate over; its pattern count is the paper's "m".
class PatternMatrix {
 public:
  PatternMatrix() = default;

  /// Compress a full alignment into distinct patterns with multiplicities.
  /// Patterns keep first-occurrence order, matching how MrBayes compresses.
  static PatternMatrix compress(const Alignment& aln);

  /// Extract the first `count` distinct patterns of `aln`, all with weight 1
  /// (the paper's sub-alignment extraction; throws if the alignment has
  /// fewer distinct patterns than requested).
  static PatternMatrix distinct_prefix(const Alignment& aln, std::size_t count);

  /// Assemble directly from per-pattern columns (each of length n_taxa) and
  /// weights. Used by the dataset generator, which deduplicates on the fly.
  static PatternMatrix from_patterns(
      std::vector<std::string> names,
      const std::vector<std::vector<StateMask>>& patterns,
      std::vector<std::uint32_t> weights);

  std::size_t n_taxa() const { return names_.size(); }
  std::size_t n_patterns() const { return n_patterns_; }

  /// Total column count represented (sum of weights).
  std::uint64_t total_weight() const;

  const std::vector<std::string>& names() const { return names_; }
  const aligned_vector<std::uint32_t>& weights() const { return weights_; }

  /// Mask of taxon `t` at pattern `p`.
  StateMask at(std::size_t t, std::size_t p) const {
    return data_[t * stride_ + p];
  }

  /// Row of masks for one taxon (length n_patterns(); the row start is
  /// 128-byte aligned so simulated Cell DMA can stream tip masks directly).
  const StateMask* row(std::size_t t) const { return &data_[t * stride_]; }

 private:
  void init_storage(std::size_t n_taxa, std::size_t n_patterns) {
    n_patterns_ = n_patterns;
    stride_ = round_up(n_patterns, kDmaAlignBytes);
    data_.assign(n_taxa * stride_, kGapMask);
  }
  StateMask& cell(std::size_t t, std::size_t p) { return data_[t * stride_ + p]; }

  std::vector<std::string> names_;
  aligned_vector<StateMask> data_;  // row-major, rows padded to stride_
  aligned_vector<std::uint32_t> weights_;
  std::size_t n_patterns_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace plf::phylo
