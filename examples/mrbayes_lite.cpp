// mrbayes_lite: a miniature MrBayes. Reads a NEXUS (or FASTA/PHYLIP) file,
// runs Metropolis-coupled MCMC under GTR+I+Γ with the fine-grain parallel
// PLF on the threaded backend, and reports the posterior: trace diagnostics
// (ESS), split frequencies, and a majority-rule consensus tree with support
// values. With no input file it demonstrates itself on simulated data.
// --clv-budget caps per-engine CLV memory (e.g. 64M, 1048576, or a fraction
// like 0.5 of the unbudgeted footprint); evicted vectors are recomputed on
// demand, bit-identically.
//
// Usage: mrbayes_lite [--site-repeats=on|off|auto] [--dispatch=percall|plan]
//                     [--clv-budget=BYTES|FRACTION] [--profile[=FILE]]
//                     [--metrics-json[=FILE]] [--shared-pool[=DRIVERS]]
//                     [--checkpoint-every=N] [--checkpoint=FILE]
//                     [--resume=FILE] [--partitions=N|SPEC]
//                     [--telemetry[=FILE]] [--telemetry-every=N]
//                     [--status-file=FILE] [--stop-at-ess=N]
//                     [alignment-file] [generations] [chains] [seed]
//
// --telemetry streams one plf-telemetry-v1 JSONL record (gen, lnL, streaming
// ESS, R-hat, acceptance + swap rates, metrics snapshot) every
// --telemetry-every generations (default 100) to FILE (default
// plf_telemetry.jsonl); --status-file additionally maintains an atomic
// latest-status JSON that tools/plf_status renders live. With --resume the
// telemetry file is truncated to the checkpoint's generation and the
// continuation appends bit-consistently. --stop-at-ess=N ends the run early
// once the cold chain's streaming lnL ESS reaches N (docs/OBSERVABILITY.md).
//
// --shared-pool steps all chains concurrently through an
// exec::InstanceScheduler (DRIVERS driver threads, default one per chain) on
// the one shared ThreadPool — bit-identical to the sequential default.
// --checkpoint-every=N writes a versioned checkpoint every N generations to
// the --checkpoint path (default mrbayes_lite.ckpt); --resume=FILE restores
// it and continues to the requested generation total, reproducing the
// uninterrupted run's trajectory to the last bit (docs/SHARDING.md).
// --partitions demos the partitioned likelihood: the starting state's lnL is
// decomposed over N uniform column ranges (or an explicit
// "name:first-last,..." spec) evaluated as independent model instances.
//
// --profile enables span tracing, prints the paper-style (Fig. 12) time
// breakdown after the run, and writes a chrome://tracing / Perfetto-loadable
// trace to FILE (default plf_trace.json). --metrics-json dumps the full
// metrics snapshot (counters, gauges, timer stats) as JSON to FILE (default
// plf_metrics.json).
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "exec/partitioned.hpp"
#include "exec/scheduler.hpp"
#include "mcmc/chain.hpp"
#include "mcmc/consensus.hpp"
#include "mcmc/coupled.hpp"
#include "mcmc/diagnostics.hpp"
#include "obs/exporter.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "phylo/nexus.hpp"
#include "util/error.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/table.hpp"

namespace {

plf::phylo::Alignment load_or_simulate(const char* path, std::uint64_t seed) {
  using namespace plf;
  if (path != nullptr) {
    const std::string p = path;
    if (p.size() > 4 && (p.substr(p.size() - 4) == ".nex" ||
                         p.substr(p.size() - 4) == ".nxs")) {
      const auto nx = phylo::read_nexus_file(p);
      if (!nx.has_alignment) {
        throw plf::Error("NEXUS file has no DATA block: " + p);
      }
      return nx.alignment;
    }
    return phylo::Alignment::read_file(p);
  }
  // Demo mode: simulate 10 taxa under GTR+I+Gamma.
  std::cout << "(no input file: simulating a 10-taxon GTR+I+G data set)\n";
  Rng rng(seed);
  const phylo::Tree tree = seqgen::yule_tree(10, rng, 1.0, 0.12);
  auto params = seqgen::default_gtr_params();
  params.p_invariant = 0.2;
  const phylo::SubstitutionModel model(params);
  const seqgen::SequenceEvolver ev(tree, model);
  return ev.evolve(1500, rng);
}

}  // namespace

int run_main(int argc, char** argv) {
  using namespace plf;

  core::SiteRepeatsMode repeats = core::SiteRepeatsMode::kAuto;
  core::DispatchMode dispatch = core::DispatchMode::kPlan;
  core::ClvBudget clv_budget;  // default: unlimited
  std::string profile_path;   // empty: profiling report/trace off
  std::string metrics_path;   // empty: metrics JSON off
  bool shared_pool = false;
  std::size_t n_drivers = 0;        // 0: one per chain
  std::uint64_t checkpoint_every = 0;
  std::string checkpoint_path = "mrbayes_lite.ckpt";
  std::string resume_path;          // empty: fresh run
  std::string partitions_spec;      // empty: unpartitioned
  std::string telemetry_path;       // empty: no JSONL telemetry
  std::string status_path;          // empty: no latest-status file
  std::uint64_t telemetry_every = 100;
  double stop_at_ess = 0.0;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    constexpr const char* kRepeatsFlag = "--site-repeats=";
    const std::string arg = argv[i];
    if (std::strncmp(argv[i], kRepeatsFlag, std::strlen(kRepeatsFlag)) == 0) {
      repeats = core::site_repeats_mode_from_string(
          argv[i] + std::strlen(kRepeatsFlag));
    } else if (arg.rfind("--dispatch=", 0) == 0) {
      dispatch = core::dispatch_mode_from_string(
          arg.substr(std::strlen("--dispatch=")));
    } else if (arg.rfind("--clv-budget=", 0) == 0) {
      clv_budget = core::clv_budget_from_string(
          arg.substr(std::strlen("--clv-budget=")));
    } else if (arg == "--profile") {
      profile_path = "plf_trace.json";
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile_path = arg.substr(std::strlen("--profile="));
    } else if (arg == "--metrics-json") {
      metrics_path = "plf_metrics.json";
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_path = arg.substr(std::strlen("--metrics-json="));
    } else if (arg == "--shared-pool") {
      shared_pool = true;
    } else if (arg.rfind("--shared-pool=", 0) == 0) {
      shared_pool = true;
      n_drivers = std::strtoul(arg.c_str() + std::strlen("--shared-pool="),
                               nullptr, 10);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
      checkpoint_every = std::strtoull(
          arg.c_str() + std::strlen("--checkpoint-every="), nullptr, 10);
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      checkpoint_path = arg.substr(std::strlen("--checkpoint="));
    } else if (arg.rfind("--resume=", 0) == 0) {
      resume_path = arg.substr(std::strlen("--resume="));
    } else if (arg.rfind("--partitions=", 0) == 0) {
      partitions_spec = arg.substr(std::strlen("--partitions="));
    } else if (arg == "--telemetry") {
      telemetry_path = "plf_telemetry.jsonl";
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_path = arg.substr(std::strlen("--telemetry="));
    } else if (arg.rfind("--telemetry-every=", 0) == 0) {
      telemetry_every = std::strtoull(
          arg.c_str() + std::strlen("--telemetry-every="), nullptr, 10);
    } else if (arg.rfind("--status-file=", 0) == 0) {
      status_path = arg.substr(std::strlen("--status-file="));
    } else if (arg.rfind("--stop-at-ess=", 0) == 0) {
      stop_at_ess = std::strtod(
          arg.c_str() + std::strlen("--stop-at-ess="), nullptr);
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (!profile_path.empty()) {
    obs::MetricsRegistry::global().enable_tracing(true);
  }
  const char* path = (!pos.empty() && pos[0][0] != '\0') ? pos[0] : nullptr;
  const std::uint64_t gens =
      pos.size() > 1 ? std::strtoull(pos[1], nullptr, 10) : 5000;
  const std::size_t n_chains =
      pos.size() > 2 ? std::strtoul(pos[2], nullptr, 10) : 4;
  const std::uint64_t seed =
      pos.size() > 3 ? std::strtoull(pos[3], nullptr, 10) : 1;

  std::cout << "== mrbayes_lite ==\n";
  const phylo::Alignment aln = load_or_simulate(path, seed);
  const auto data = phylo::PatternMatrix::compress(aln);
  std::cout << "data: " << aln.n_taxa() << " taxa, " << aln.n_columns()
            << " columns, " << data.n_patterns() << " distinct patterns\n";
  std::cout << "run: " << gens << " generations, " << n_chains
            << " coupled chains (1 cold + " << (n_chains - 1)
            << " heated), GTR+I+G, seed " << seed << ", site repeats "
            << core::to_string(repeats) << ", dispatch "
            << core::to_string(dispatch) << ", clv budget "
            << core::to_string(clv_budget) << "\n\n";

  // Starting state: a random tree, default model with +I enabled.
  Rng rng(seed ^ 0xABCDEF);
  phylo::GtrParams start_params;
  start_params.p_invariant = 0.1;
  par::ThreadPool pool;
  core::ThreadedBackend backend(pool);

  std::vector<std::unique_ptr<core::PlfEngine>> engines;
  for (std::size_t i = 0; i < n_chains; ++i) {
    phylo::Tree start =
        seqgen::yule_tree(aln.n_taxa(), rng, 1.0, 0.1)
            .rerooted(0);
    // Engines must share taxon naming with the data.
    start = phylo::Tree::from_newick(start.to_newick(), aln.names());
    engines.push_back(std::make_unique<core::PlfEngine>(
        data, start_params, start, backend, core::KernelVariant::kSimdCol,
        repeats, dispatch, clv_budget));
  }

  if (!partitions_spec.empty()) {
    // Partitioned-likelihood demo on the starting state: the same data split
    // into per-range model instances whose lnLs sum to the joint lnL.
    const bool numeric = partitions_spec.find(':') == std::string::npos;
    const phylo::PartitionSpec spec =
        numeric ? phylo::PartitionSpec::uniform(
                      aln.n_columns(),
                      std::strtoul(partitions_spec.c_str(), nullptr, 10))
                : phylo::PartitionSpec::parse(partitions_spec,
                                              aln.n_columns());
    exec::PartitionedEngine::Config pcfg;
    pcfg.site_repeats = repeats;
    pcfg.dispatch = dispatch;
    pcfg.clv_budget = clv_budget;
    std::unique_ptr<exec::InstanceScheduler> psched;
    if (shared_pool) {
      psched = std::make_unique<exec::InstanceScheduler>(spec.n_parts());
    }
    exec::PartitionedEngine parts(aln, spec, {start_params},
                                  engines.front()->tree(), backend, pcfg,
                                  psched.get());
    const double total = parts.log_likelihood();
    parts.detach_threads();
    std::cout << "partitioned lnL at the starting state ("
              << spec.n_parts() << " parts):\n";
    for (std::size_t i = 0; i < spec.n_parts(); ++i) {
      std::cout << "  " << spec.range(i).name << " [" << spec.range(i).begin
                << ", " << spec.range(i).end
                << "): " << parts.part(i).log_likelihood() << "\n";
    }
    std::cout << "  total: " << total << "\n\n";
  }

  mcmc::CoupledOptions opts;
  opts.chain.seed = seed;
  opts.chain.sample_every = std::max<std::uint64_t>(1, gens / 200);
  opts.chain.collect_trees = true;
  opts.chain.w_pinv = 0.7;  // +I is part of the model
  opts.chain.w_spr = 1.5;   // eSPR improves topology mixing
  opts.checkpoint_every = checkpoint_every;
  opts.checkpoint_path = checkpoint_path;
  opts.stop_at_ess = stop_at_ess;
  std::unique_ptr<obs::TelemetryExporter> telemetry;
  if (!telemetry_path.empty() || !status_path.empty()) {
    obs::TelemetryOptions topts;
    topts.jsonl_path = telemetry_path;
    topts.status_path = status_path;
    topts.every_generations = telemetry_every;
    telemetry = std::make_unique<obs::TelemetryExporter>(
        topts, &obs::MetricsRegistry::global());
    opts.telemetry = telemetry.get();
    std::cout << "telemetry: every " << telemetry_every << " generations";
    if (!telemetry_path.empty()) std::cout << " -> " << telemetry_path;
    if (!status_path.empty()) std::cout << ", status " << status_path;
    std::cout << "\n";
  }
  std::unique_ptr<exec::InstanceScheduler> scheduler;
  if (shared_pool) {
    scheduler = std::make_unique<exec::InstanceScheduler>(
        n_drivers == 0 ? n_chains : n_drivers);
    std::cout << "shared pool: " << scheduler->n_drivers()
              << " instance drivers over one thread pool\n\n";
  }
  mcmc::CoupledChains mc3(std::move(engines), opts, scheduler.get());
  if (!resume_path.empty()) {
    mc3.restore_checkpoint_file(resume_path);
    std::cout << "resumed from " << resume_path << " at generation "
              << mc3.generation() << "\n\n";
    // Drop any telemetry tail a crashed run wrote past this checkpoint, so
    // the continuation appends with strictly monotone generations.
    if (telemetry != nullptr) telemetry->prepare_resume(mc3.generation());
  }
  const auto result = mc3.run(gens);
  if (result.stopped_at_ess) {
    std::cout << "stopped early at generation " << mc3.generation()
              << ": streaming lnL ESS " << Table::num(mc3.cold_ess().ess(), 1)
              << " reached --stop-at-ess=" << stop_at_ess << "\n";
  }
  if (telemetry != nullptr) {
    std::cout << "telemetry: " << telemetry->records_written()
              << " records (last generation " << telemetry->last_generation()
              << ")\n";
  }

  std::cout << "cold chain: lnL " << result.cold.samples.front().ln_likelihood
            << " -> " << result.cold.final_ln_likelihood << " (best "
            << result.cold.best_ln_likelihood << ")\n";
  std::cout << "swaps: " << result.swaps_accepted << "/"
            << result.swaps_proposed << " accepted ("
            << Table::num(100.0 * result.swap_rate(), 1) << "%)\n";
  std::cout << "wall: " << Table::num(result.cold.wall_seconds, 2) << " s\n\n";

  // Diagnostics on the post-burn-in lnL trace.
  const std::size_t burn = result.cold.samples.size() / 4;
  std::vector<double> trace;
  for (std::size_t i = burn; i < result.cold.samples.size(); ++i) {
    trace.push_back(result.cold.samples[i].ln_likelihood);
  }
  if (trace.size() >= 2) {
    const auto s = mcmc::summarize_trace(trace);
    std::cout << "lnL trace (post burn-in): mean "
              << Table::num(s.mean, 2) << ", ESS " << Table::num(s.ess, 1)
              << " of " << s.n << " samples (autocorrelation time "
              << Table::num(s.autocorrelation_time, 1) << ")\n\n";
  }

  // Posterior tree summary.
  mcmc::TreeSampleSummary summary;
  for (std::size_t i = burn; i < result.cold.sampled_trees.size(); ++i) {
    summary.add_newick(result.cold.sampled_trees[i]);
  }
  Table splits("split frequencies (top 8)");
  splits.header({"frequency", "clade"});
  int shown = 0;
  for (const auto& f : summary.split_frequencies()) {
    if (++shown > 8) break;
    std::string clade;
    for (int t : f.taxa) {
      if (!clade.empty()) clade += ' ';
      clade += summary.taxon_names()[static_cast<std::size_t>(t)];
    }
    splits.row({Table::num(f.frequency, 3), clade});
  }
  std::cout << splits << "\n";
  std::cout << "majority-rule consensus:\n  " << summary.majority_rule_newick()
            << "\n";
  std::cout << "estimated p_invariant (final cold state): "
            << Table::num(
                   mc3.engine(mc3.cold_index()).model_params().p_invariant, 3)
            << "\n";
  const auto& cold_stats = mc3.engine(mc3.cold_index()).stats();
  if (cold_stats.repeat_sites_computed > 0) {
    std::cout << "site repeats: " << Table::num(
                     cold_stats.repeat_compression_ratio(), 2)
              << "x compression on compacted kernel calls ("
              << Table::num(100.0 * cold_stats.down_repeat_hit_rate(), 1)
              << "% of CondLikeDown calls)\n";
  }

  if (!profile_path.empty() || !metrics_path.empty()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    mc3.engine(mc3.cold_index()).publish_stats(reg);
    const obs::Snapshot snap = reg.snapshot();
    if (!profile_path.empty()) {
      const obs::Breakdown b =
          obs::build_breakdown(snap, result.cold.wall_seconds, backend.name());
      std::cout << "\n" << obs::format_breakdown(b) << "\n";
      std::ofstream trace_out(profile_path);
      if (!trace_out) throw Error("cannot open trace file: " + profile_path);
      obs::write_chrome_trace(trace_out, reg);
      std::cout << "trace: " << profile_path
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
    if (!metrics_path.empty()) {
      std::ofstream metrics_out(metrics_path);
      if (!metrics_out) {
        throw Error("cannot open metrics file: " + metrics_path);
      }
      obs::write_metrics_json(metrics_out, snap);
      std::cout << "metrics: " << metrics_path << "\n";
    }
  }
  return 0;
}

int main(int argc, char** argv) {
  // Arm the flight recorder's terminate hook first: any later crash or
  // uncaught error dumps each thread's last spans (docs/OBSERVABILITY.md).
  plf::obs::install_flight_handlers();
  try {
    return run_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
