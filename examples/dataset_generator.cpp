// Dataset generation tool (the Seq-Gen + extraction pipeline of §4):
// simulates a Yule tree, evolves sequences under GTR+Gamma, and writes the
// alignment (FASTA or PHYLIP) plus the tree (Newick) to files — or, with
// --grid, reports the paper's full 16-cell input grid.
//
// Usage:
//   dataset_generator <taxa> <columns> [seed] [basename]
//   dataset_generator --grid
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace plf;

  if (argc > 1 && std::strcmp(argv[1], "--grid") == 0) {
    std::cout << "== paper input grid (distinct-pattern targets) ==\n";
    Table t;
    t.header({"name", "taxa", "patterns", "tree length", "total weight"});
    for (const auto& spec : seqgen::paper_grid()) {
      // Generate the small cells fully; report larger ones by spec only to
      // keep this example fast (the benches generate everything).
      if (spec.patterns <= 5000) {
        const auto ds = seqgen::make_grid_dataset(spec);
        t.row({ds.name, std::to_string(spec.taxa),
               std::to_string(ds.patterns.n_patterns()),
               Table::num(ds.tree.total_length(), 3),
               std::to_string(ds.patterns.total_weight())});
      } else {
        t.row({spec.name(), std::to_string(spec.taxa),
               std::to_string(spec.patterns), "(on demand)", "-"});
      }
    }
    std::cout << t;
    return 0;
  }

  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " <taxa> <columns> [seed] [basename] | --grid\n";
    return 1;
  }
  const std::size_t taxa = std::strtoul(argv[1], nullptr, 10);
  const std::size_t cols = std::strtoul(argv[2], nullptr, 10);
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;
  const std::string base = argc > 4 ? argv[4] : "dataset";

  Rng rng(seed);
  const phylo::Tree tree = seqgen::yule_tree(taxa, rng, 1.0, 0.15);
  const phylo::SubstitutionModel model(seqgen::default_gtr_params());
  const seqgen::SequenceEvolver evolver(tree, model);
  const phylo::Alignment aln = evolver.evolve(cols, rng);
  const auto patterns = phylo::PatternMatrix::compress(aln);

  {
    std::ofstream f(base + ".fasta");
    aln.write_fasta(f);
  }
  {
    std::ofstream f(base + ".phy");
    aln.write_phylip(f);
  }
  {
    std::ofstream f(base + ".nwk");
    f << tree.to_newick() << "\n";
  }

  std::cout << "wrote " << base << ".fasta / .phy / .nwk\n";
  std::cout << "taxa: " << taxa << ", columns: " << cols
            << ", distinct patterns: " << patterns.n_patterns() << " ("
            << Table::num(100.0 * static_cast<double>(patterns.n_patterns()) /
                              static_cast<double>(cols),
                          1)
            << "%)\n";
  return 0;
}
