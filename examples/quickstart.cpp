// Quickstart: simulate a small DNA data set, compute its likelihood with the
// fine-grain parallel PLF on several backends, and verify they agree.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "cell/machine.hpp"
#include "gpu/plf_gpu.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "simd/simd.hpp"
#include "util/table.hpp"

int main() {
  using namespace plf;

  std::cout << "== plf quickstart ==\n";
  std::cout << "SIMD backend: " << simd::backend_name() << "\n\n";

  // 1. Simulate data: a 12-taxon tree and 2,000 alignment columns under
  //    GTR+Gamma (our Seq-Gen equivalent), then compress to site patterns.
  Rng rng(2024);
  const phylo::Tree tree = seqgen::yule_tree(12, rng, 1.0, 0.12);
  const phylo::GtrParams params = seqgen::default_gtr_params();
  const phylo::SubstitutionModel model(params);
  const seqgen::SequenceEvolver evolver(tree, model);
  const phylo::Alignment alignment = evolver.evolve(2000, rng);
  const phylo::PatternMatrix patterns = phylo::PatternMatrix::compress(alignment);

  std::cout << "alignment: " << alignment.n_taxa() << " taxa x "
            << alignment.n_columns() << " columns -> " << patterns.n_patterns()
            << " distinct site patterns\n";
  std::cout << "tree: " << tree.to_newick().substr(0, 70) << "...\n\n";

  // 2. Evaluate the phylogenetic likelihood on different execution backends.
  Table table("log-likelihood by backend");
  table.header({"backend", "lnL", "notes"});

  core::SerialBackend serial;
  {
    core::PlfEngine engine(patterns, params, tree, serial,
                           core::KernelVariant::kSimdCol);
    table.row({"serial (SSE col-wise)", Table::num(engine.log_likelihood(), 4),
               "host, approach (ii) kernels"});
  }
  {
    par::ThreadPool pool;  // hardware concurrency
    core::ThreadedBackend threads(pool);
    core::PlfEngine engine(patterns, params, tree, threads,
                           core::KernelVariant::kSimdCol);
    table.row({"threads(" + std::to_string(pool.size()) + ")",
               Table::num(engine.log_likelihood(), 4),
               "OpenMP-style parallel-for over patterns"});
  }
  {
    cell::CellConfig cfg;
    cfg.n_spes = 6;  // a PS3
    cell::CellMachine machine(cfg);
    core::PlfEngine engine(patterns, params, tree, machine,
                           core::KernelVariant::kSimdCol);
    const double lnl = engine.log_likelihood();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "simulated %.2f ms on 6 SPEs",
                  machine.simulated_seconds() * 1e3);
    table.row({"Cell/BE (PS3 sim)", Table::num(lnl, 4), buf});
  }
  {
    gpu::GpuPlfConfig cfg;  // an 8800GT with the paper's 40x256 launch
    gpu::GpuPlf device(cfg);
    core::PlfEngine engine(patterns, params, tree, device,
                           core::KernelVariant::kScalar);
    const double lnl = engine.log_likelihood();
    char buf[96];
    std::snprintf(buf, sizeof(buf), "simulated %.2f ms (%.0f%% PCIe)",
                  device.simulated_seconds() * 1e3,
                  100.0 * device.stats().pcie_s / device.simulated_seconds());
    table.row({"GPU (8800GT sim)", Table::num(lnl, 4), buf});
  }

  std::cout << table << "\n";
  std::cout << "All backends compute the same likelihood from the same\n"
               "conditional-likelihood kernels; the simulators additionally\n"
               "account the hardware costs the paper analyzes.\n";
  return 0;
}
