// Maximum-likelihood tree search (RAxML-style) on simulated data: start from
// a random topology, hill-climb with NNI + Brent branch-length optimization,
// and compare against the data-generating tree.
//
// Usage: ml_search [taxa] [columns] [seed]
#include <cstdlib>
#include <iostream>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "core/search.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/clock.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace plf;

  const std::size_t taxa = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2000;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  std::cout << "== maximum-likelihood tree search ==\n";
  std::cout << "taxa=" << taxa << " columns=" << cols << " seed=" << seed
            << "\n\n";

  Rng rng(seed);
  const phylo::Tree true_tree = seqgen::yule_tree(taxa, rng, 1.0, 0.12);
  const phylo::GtrParams params = seqgen::default_gtr_params();
  const phylo::SubstitutionModel model(params);
  const seqgen::SequenceEvolver ev(true_tree, model);
  const auto data = phylo::PatternMatrix::compress(ev.evolve(cols, rng));
  std::cout << "data: " << data.n_patterns() << " distinct patterns\n";

  const phylo::Tree start = seqgen::yule_tree(taxa, rng, 1.0, 0.12);
  par::ThreadPool pool;
  core::ThreadedBackend backend(pool);
  core::PlfEngine engine(data, params, start, backend);
  std::cout << "random-start lnL: " << engine.log_likelihood() << "\n";

  Stopwatch sw;
  const auto result = core::hill_climb(engine);
  std::cout << "search finished in " << Table::num(sw.seconds(), 2) << " s: "
            << result.rounds << " sweeps, " << result.accepted_moves
            << " NNIs accepted, " << result.evaluations
            << " likelihood evaluations\n";
  std::cout << "final lnL: " << result.ln_likelihood << "\n";

  core::SerialBackend serial;
  core::PlfEngine ref(data, params, true_tree, serial);
  std::cout << "lnL at generating tree/parameters: " << ref.log_likelihood()
            << "\n";
  std::cout << "true topology recovered: "
            << (engine.tree().same_topology(true_tree) ? "YES" : "no") << "\n";
  std::cout << "ML tree: " << engine.tree().to_newick() << "\n";
  return 0;
}
