// A complete Bayesian phylogenetic analysis, MrBayes-style: start from a
// random topology, run Metropolis-Hastings over trees + branch lengths +
// GTR+Gamma parameters, and report the chain trace, acceptance rates, and
// whether the true (data-generating) topology was recovered.
//
// Usage: mcmc_analysis [taxa] [columns] [generations] [seed]
#include <cstdlib>
#include <iostream>

#include "core/backend.hpp"
#include "core/engine.hpp"
#include "mcmc/chain.hpp"
#include "phylo/patterns.hpp"
#include "seqgen/datasets.hpp"
#include "seqgen/evolve.hpp"
#include "seqgen/random_tree.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace plf;

  const std::size_t taxa = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const std::size_t cols = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1500;
  const std::uint64_t gens =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8000;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;

  std::cout << "== Bayesian phylogenetic analysis (simulated data) ==\n";
  std::cout << "taxa=" << taxa << " columns=" << cols
            << " generations=" << gens << " seed=" << seed << "\n\n";

  // Simulate "truth" and data.
  Rng rng(seed);
  const phylo::Tree true_tree = seqgen::yule_tree(taxa, rng, 1.0, 0.12);
  const phylo::GtrParams true_params = seqgen::default_gtr_params();
  const phylo::SubstitutionModel model(true_params);
  const seqgen::SequenceEvolver evolver(true_tree, model);
  const auto data = phylo::PatternMatrix::compress(evolver.evolve(cols, rng));
  std::cout << "data: " << data.n_patterns() << " distinct patterns from "
            << cols << " columns\n";

  // Random starting state.
  const phylo::Tree start_tree = seqgen::yule_tree(taxa, rng, 1.0, 0.12);
  par::ThreadPool pool;
  core::ThreadedBackend backend(pool);
  core::PlfEngine engine(data, phylo::GtrParams{}, start_tree, backend);
  std::cout << "start lnL: " << engine.log_likelihood() << "\n\n";

  mcmc::McmcOptions opts;
  opts.seed = seed;
  opts.sample_every = gens / 20;
  mcmc::McmcChain chain(engine, opts);
  const mcmc::McmcResult result = chain.run(gens);

  Table trace("chain trace (sampled)");
  trace.header({"generation", "lnL", "tree length", "gamma shape"});
  for (const auto& s : result.samples) {
    trace.row({std::to_string(s.generation), Table::num(s.ln_likelihood, 2),
               Table::num(s.tree_length, 3), Table::num(s.gamma_shape, 3)});
  }
  std::cout << trace << "\n";

  Table acc("proposal acceptance");
  acc.header({"move", "proposed", "accepted", "rate"});
  for (const auto& [name, st] : result.proposals) {
    acc.row({name, std::to_string(st.proposed), std::to_string(st.accepted),
             Table::num(st.acceptance_rate(), 3)});
  }
  std::cout << acc << "\n";

  std::cout << "final lnL:   " << result.final_ln_likelihood << "\n";
  std::cout << "best lnL:    " << result.best_ln_likelihood << "\n";
  std::cout << "wall time:   " << Table::num(result.wall_seconds, 3) << " s ("
            << Table::num(100.0 * result.plf_wall_seconds /
                              std::max(result.wall_seconds, 1e-12),
                          1)
            << "% in PLF kernels — the paper's 85-95% claim)\n";
  std::cout << "true topology recovered: "
            << (engine.tree().same_topology(true_tree) ? "YES" : "no") << "\n";
  std::cout << "final tree: " << engine.tree().to_newick() << "\n";
  return 0;
}
