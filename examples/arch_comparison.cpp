// Side-by-side architecture comparison — the paper's core experiment as a
// runnable example: one PLF workload evaluated on every Table-1 system
// model, with the total time split into PLF / Remaining / PCIe (Fig. 12's
// decomposition) and overall speedup vs the baseline.
//
// Usage: arch_comparison [taxa] [patterns] [generations]
#include <cstdlib>
#include <iostream>

#include "arch/models.hpp"
#include "arch/systems.hpp"
#include "arch/workload.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace plf;
  using namespace plf::arch;

  const std::size_t taxa = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20;
  const std::size_t m = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8543;
  const std::uint64_t gens =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2000;

  std::cout << "== architecture comparison ==\n";
  std::cout << "workload: " << taxa << " taxa, " << m << " patterns, " << gens
            << " MCMC generations\n\n";

  const PlfWorkload w = analytic_mcmc_workload(taxa, m, gens);
  const auto& base_sys = system_by_name("Baseline");
  MultiCoreModel base(base_sys);
  const double t_base = base.total_s(w, 1);

  Table table("frequency-scaled total time (baseline = 100%)");
  table.header({"system", "PLF %", "Remaining %", "PCIe %", "total %", "speedup"});

  auto add_row = [&](const std::string& name, double plf, double rem,
                     double pcie) {
    const double total = plf + rem + pcie;
    table.row({name, Table::num(100.0 * plf / t_base, 1),
               Table::num(100.0 * rem / t_base, 1),
               pcie > 0.0 ? Table::num(100.0 * pcie / t_base, 1) : "-",
               Table::num(100.0 * total / t_base, 1),
               Table::num(t_base / total, 2)});
  };

  add_row("Baseline", base.plf_section_s(w, 1), base.serial_s(w), 0.0);

  for (const char* name : {"2xXeon(4)", "4xOpteron(4)", "8xOpteron(2)"}) {
    const auto& sys = system_by_name(name);
    MultiCoreModel model(sys);
    add_row(name,
            frequency_scaled(model.plf_section_s(w, sys.cores), sys, base_sys),
            frequency_scaled(model.serial_s(w), sys, base_sys), 0.0);
  }
  for (const char* name : {"PS3", "QS20"}) {
    const auto& sys = system_by_name(name);
    CellModel model(sys);
    add_row(name,
            frequency_scaled(model.plf_section_s(w, sys.cell.n_spes), sys,
                             base_sys),
            frequency_scaled(model.serial_s(w), sys, base_sys), 0.0);
  }
  for (const char* name : {"8800GT", "GTX285"}) {
    const auto& sys = system_by_name(name);
    GpuModel model(sys);
    const auto t = model.plf_section(w);
    add_row(name, frequency_scaled(t.kernel_s, sys, base_sys),
            frequency_scaled(model.serial_s(w), sys, base_sys),
            frequency_scaled(t.pcie_s, sys, base_sys));
  }

  std::cout << table << "\n";
  std::cout
      << "Reading guide (paper §4.2): multi-cores cut the PLF AND keep the\n"
         "serial remainder fast -> best overall. The Cell's SPEs crush the\n"
         "PLF but its in-order PPE inflates Remaining. The GPUs have the\n"
         "fastest kernels of all, then give the win back to PCIe transfers\n"
         "(the 8800GT can end up slower than the baseline).\n";
  return 0;
}
